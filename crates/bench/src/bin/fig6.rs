//! Regenerates Fig. 6(a–c): sensitivity of MSE, decision time, energy and
//! SLO violation rate to the generation learning rate γ, the GON memory
//! footprint, and the tabu-list size.
//!
//! ```text
//! cargo run -p bench --bin fig6 --release             # standard setting
//! cargo run -p bench --bin fig6 --release -- --fast   # reduced setting
//! ```

use bench::fig6::{run, Fig6Config, SensitivityPoint, Sweep};

fn print_panel(panel: &str, sweep: Sweep, points: &[SensitivityPoint]) {
    println!(
        "\n=== Fig. 6({panel}) — sensitivity to {} ===",
        sweep.label()
    );
    println!(
        "{:>12}  {:>10}  {:>14}  {:>12}  {:>10}",
        sweep.label(),
        "MSE",
        "decision (s)",
        "energy (kWh)",
        "SLO rate"
    );
    for p in points {
        println!(
            "{:>12}  {:>10.4}  {:>14.5}  {:>12.2}  {:>10.4}",
            p.x, p.mse, p.decision_s, p.energy_kwh, p.slo_rate
        );
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let seed = 11;
    let config = if fast {
        Fig6Config::fast(seed)
    } else {
        Fig6Config::standard(seed)
    };

    for (panel, sweep) in [
        ("a", Sweep::LearningRate),
        ("b", Sweep::MemoryGb),
        ("c", Sweep::TabuListSize),
    ] {
        eprintln!("[fig6] sweeping {}…", sweep.label());
        let points = run(sweep, &config);
        print_panel(panel, sweep, &points);
    }

    println!(
        "\n# Paper shape targets: γ = 1e-3 gives the best QoS (higher γ fails to\n\
         # converge, lower γ inflates scheduling time); QoS gains flatten past\n\
         # 1 GB of model memory while scheduling time keeps rising; larger tabu\n\
         # lists trade scheduling time for better energy/SLO."
    );
}
