//! Per-phase wall-clock profile of the interval engine: the `phases`
//! binary's library half, producing `PHASES_PR.json`.
//!
//! The simulator's step is a pipeline of seven stages
//! ([`edgesim::phases`]), each timed by the facade into
//! [`IntervalReport::phases`](edgesim::IntervalReport). This module
//! drives registry scenarios through bare simulator steps — no
//! controller, so the numbers isolate the simulation itself — and
//! accumulates the per-stage wall-clock into one row per scenario.
//!
//! CI consumes two columns: `determine_failures_s` at `aiot-1024` is
//! gated against `ci/phase_baseline.json` (>20% regression fails), and
//! `determine_failures_frac` at `aiot-4096` documents that failure
//! determination no longer dominates the interval (the pre-sharding
//! engine spent the majority of large-federation steps there).

use carol::scenario::ScenarioSpec;
use edgesim::{PhaseTimings, Simulator};
use faults::FaultInjector;
use serde::{Deserialize, Serialize};

/// Env var naming the JSON artifact destination (CI sets it to
/// `PHASES_PR.json`); `--out` takes precedence.
pub const PHASES_JSON_ENV: &str = "PHASES_JSON";

/// Configuration of one phase-profile run.
#[derive(Debug, Clone)]
pub struct PhasesConfig {
    /// Registry scenario names to profile, in order.
    pub scenarios: Vec<&'static str>,
    /// Scheduling intervals per scenario.
    pub intervals: usize,
    /// Master seed.
    pub seed: u64,
}

impl PhasesConfig {
    /// The full profile: up to 4096 hosts, 12 intervals per scenario.
    pub fn full(seed: u64) -> Self {
        Self {
            scenarios: vec!["aiot-256", "aiot-1024", "aiot-4096"],
            intervals: 12,
            seed,
        }
    }

    /// CI-budget profile: up to 1024 hosts, 8 intervals.
    pub fn fast(seed: u64) -> Self {
        Self {
            scenarios: vec!["aiot-256", "aiot-1024"],
            intervals: 8,
            seed,
        }
    }
}

/// One scenario's phase profile — a `PHASES_PR.json` row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasePoint {
    /// Registry scenario name.
    pub scenario: String,
    /// Federation size.
    pub n_hosts: usize,
    /// LEI count.
    pub n_brokers: usize,
    /// Intervals stepped.
    pub intervals: usize,
    /// Cumulative per-stage wall-clock over the run.
    pub timings: PhaseTimings,
    /// Sum of the stage columns, seconds.
    pub total_s: f64,
    /// Mean simulator-step wall-clock per interval, seconds.
    pub per_interval_s: f64,
    /// Share of step wall-clock spent determining failures — the
    /// column the sharded scan is meant to keep small.
    pub determine_failures_frac: f64,
}

/// Profiles one registry scenario: bare simulator steps (arrivals from
/// the scenario's workload, faults from its injector, no resilience
/// policy) with the facade's per-stage timings accumulated.
///
/// # Panics
///
/// Panics on an unknown scenario name — profile targets are
/// compile-time constants, not user input.
pub fn profile_scenario(name: &str, intervals: usize, seed: u64) -> PhasePoint {
    let mut spec = ScenarioSpec::named(name, seed)
        .unwrap_or_else(|| panic!("{name} is not a registered scenario"));
    spec.intervals = intervals;
    let config = spec.experiment_config();
    let mut sim = Simulator::new(config.sim.clone());
    let mut workload = spec.build_workload();
    let mut scheduler = spec.scheduler.build();
    let mut injector = FaultInjector::with_model(
        config.fault_rate,
        config.fault_target,
        config.fault_model.clone(),
        config.seed ^ 0x4654,
    );

    let mut timings = PhaseTimings::default();
    for t in 0..intervals {
        injector.inject(t, &mut sim);
        let report = sim.step(workload.sample_interval(t), scheduler.as_mut());
        timings.accumulate(&report.phases);
    }

    let total_s = timings.total_s();
    PhasePoint {
        scenario: spec.name,
        n_hosts: spec.n_hosts,
        n_brokers: spec.n_brokers,
        intervals,
        timings,
        total_s,
        per_interval_s: total_s / intervals.max(1) as f64,
        determine_failures_frac: timings.determine_failures_frac(),
    }
}

/// Runs the profile **sequentially** (so no row's wall-clock is
/// polluted by a sibling) and returns one point per scenario.
pub fn profile(config: &PhasesConfig) -> Vec<PhasePoint> {
    config
        .scenarios
        .iter()
        .map(|name| profile_scenario(name, config.intervals, config.seed))
        .collect()
}

/// Serialises profile points as pretty JSON (the `PHASES_JSON`
/// artifact).
pub fn to_json(points: &[PhasePoint]) -> String {
    serde_json::to_string_pretty(&points.to_vec()).expect("phase points serialise")
}

/// Renders the points as an aligned text table for stdout.
pub fn render_table(points: &[PhasePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:>7}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}\n",
        "scenario", "hosts", "admit_ms", "determ_ms", "sched_ms", "exec_ms", "step_ms", "determ%"
    ));
    out.push_str(&"-".repeat(89));
    out.push('\n');
    for p in points {
        let per = |s: f64| 1e3 * s / p.intervals.max(1) as f64;
        out.push_str(&format!(
            "{:<12}{:>7}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>10.1}\n",
            p.scenario,
            p.n_hosts,
            per(p.timings.admit_s),
            per(p.timings.determine_failures_s),
            per(p.timings.schedule_dispatch_s),
            per(p.timings.execute_s),
            1e3 * p.per_interval_s,
            100.0 * p.determine_failures_frac,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_times_every_stage_and_round_trips() {
        let config = PhasesConfig {
            scenarios: vec!["paper-16"],
            intervals: 4,
            seed: 3,
        };
        let points = profile(&config);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.scenario, "paper-16");
        assert_eq!(p.n_hosts, 16);
        assert!(p.total_s > 0.0, "stages must be timed");
        assert!(p.per_interval_s > 0.0);
        assert!((0.0..=1.0).contains(&p.determine_failures_frac));
        assert!(
            (p.total_s - p.timings.total_s()).abs() < 1e-12,
            "summary columns mirror the timings struct"
        );

        let json = to_json(&points);
        let back: Vec<PhasePoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(back[0].scenario, points[0].scenario);
        assert_eq!(back[0].total_s.to_bits(), points[0].total_s.to_bits());
        let table = render_table(&points);
        assert!(table.contains("paper-16"));
        assert!(table.contains("determ%"));
    }
}
