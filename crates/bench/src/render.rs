//! Plain-text table rendering for the experiment binaries.

use metrics::Summary;

/// One policy's row in a comparison table: a name plus one [`Summary`]
/// per metric column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy name (e.g. `"CAROL"`, `"FRAS"`).
    pub name: String,
    /// Per-metric summaries, aligned with the header supplied to
    /// [`render_comparison`].
    pub metrics: Vec<Summary>,
}

/// Renders rows as an aligned text table. `headers` must match each row's
/// metric count. When `relative_to` names a row, a second line per metric
/// shows the value relative to that row (the "relative performance" axis
/// of Fig. 5).
///
/// # Panics
///
/// Panics if a row's metric count differs from the header count.
pub fn render_comparison(headers: &[&str], rows: &[Row], relative_to: Option<&str>) -> String {
    let reference: Option<Vec<f64>> = relative_to.and_then(|name| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.metrics.iter().map(|m| m.mean()).collect())
    });

    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("Policy".len()))
        .max()
        .unwrap_or(8)
        + 2;
    let col_width = 22usize;

    let mut out = String::new();
    out.push_str(&format!("{:<name_width$}", "Policy"));
    for h in headers {
        out.push_str(&format!("{h:>col_width$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(name_width + col_width * headers.len()));
    out.push('\n');

    for row in rows {
        assert_eq!(
            row.metrics.len(),
            headers.len(),
            "row {} has {} metrics for {} headers",
            row.name,
            row.metrics.len(),
            headers.len()
        );
        out.push_str(&format!("{:<name_width$}", row.name));
        for (i, m) in row.metrics.iter().enumerate() {
            let cell = match &reference {
                Some(r) if r[i].abs() > 1e-12 => {
                    format!(
                        "{} ({:+.0}%)",
                        m.display(3),
                        100.0 * (m.mean() - r[i]) / r[i]
                    )
                }
                _ => m.display(3),
            };
            out.push_str(&format!("{cell:>col_width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str, vals: &[f64]) -> Summary {
        let mut s = Summary::new(name);
        for &v in vals {
            s.add_run(v);
        }
        s
    }

    fn rows() -> Vec<Row> {
        vec![
            Row {
                name: "CAROL".into(),
                metrics: vec![summary("e", &[10.0, 12.0]), summary("s", &[0.05])],
            },
            Row {
                name: "FRAS".into(),
                metrics: vec![summary("e", &[14.0, 14.0]), summary("s", &[0.07])],
            },
        ]
    }

    #[test]
    fn renders_headers_and_rows() {
        let s = render_comparison(&["Energy", "SLO"], &rows(), None);
        assert!(s.contains("CAROL"));
        assert!(s.contains("FRAS"));
        assert!(s.contains("Energy"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn relative_column_computes_percentages() {
        let s = render_comparison(&["Energy", "SLO"], &rows(), Some("CAROL"));
        // FRAS energy = 14 vs CAROL 11 → +27%.
        assert!(s.contains("(+27%)"), "table was:\n{s}");
        assert!(s.contains("(+0%)"), "reference row shows zero delta:\n{s}");
    }

    #[test]
    #[should_panic(expected = "metrics for")]
    fn mismatched_columns_panic() {
        let bad = vec![Row {
            name: "X".into(),
            metrics: vec![summary("e", &[1.0])],
        }];
        render_comparison(&["A", "B"], &bad, None);
    }
}
