//! Shared CLI plumbing for the figure binaries.
//!
//! Every artefact binary speaks the same dialect — `--fast`,
//! `--scenario <name>`, `--out <path>` with a per-binary env-var
//! fallback, plus binary-specific `--flag value` pairs — so the parsing
//! lives here once, as [`CommonArgs`]. Scenario names resolve through
//! the [`carol::scenario`] registry; an unknown name aborts with the
//! catalogue, so `--scenario help` (or any typo) doubles as discovery.

use carol::scenario::ScenarioSpec;

/// The flags every artefact binary shares, parsed once.
///
/// ```
/// let args = bench::cli::CommonArgs::from_vec(vec![
///     "--fast".into(),
///     "--out".into(),
///     "report.json".into(),
/// ]);
/// assert!(args.fast);
/// assert_eq!(args.out_path("NO_SUCH_ENV"), Some("report.json".into()));
/// ```
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// `--fast` was passed: run the CI-budget variant.
    pub fast: bool,
    /// The raw argument list (program name stripped).
    args: Vec<String>,
}

impl CommonArgs {
    /// Parses the process arguments (`std::env::args`, program name
    /// skipped).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument list — the testable entry point.
    pub fn from_vec(args: Vec<String>) -> Self {
        Self {
            fast: args.iter().any(|a| a == "--fast"),
            args,
        }
    }

    /// `true` when `flag` appears anywhere in the argument list.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// The value following `--flag`, if both are present.
    pub fn flag_value(&self, flag: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1).cloned())
    }

    /// `--scenario <name>`, resolved through the registry with `seed`.
    /// `None` when the flag is absent; aborts with the catalogue on a
    /// missing or unknown name (see [`scenario_from_args`]).
    pub fn scenario(&self, seed: u64) -> Option<ScenarioSpec> {
        scenario_from_args(&self.args, seed)
    }

    /// The JSON artifact destination: `--out <path>`, falling back to
    /// the binary's env var (`SCALE_JSON`, `FUZZ_JSON`, `SERVE_JSON`, …)
    /// when the flag is absent. Empty env values count as unset.
    pub fn out_path(&self, env_var: &str) -> Option<String> {
        self.flag_value("--out")
            .or_else(|| std::env::var(env_var).ok().filter(|p| !p.is_empty()))
    }
}

/// Parses `--scenario <name>` out of `args`, resolving the name through
/// [`ScenarioSpec::named`] with `seed`. Returns `None` when the flag is
/// absent.
///
/// # Panics
///
/// Panics (with the registry catalogue) when the flag is present but the
/// name is missing or unknown — a CLI usage error, not a runtime
/// condition.
pub fn scenario_from_args(args: &[String], seed: u64) -> Option<ScenarioSpec> {
    let i = args.iter().position(|a| a == "--scenario")?;
    let name = args.get(i + 1).unwrap_or_else(|| {
        panic!(
            "--scenario needs a name; registered scenarios: {:?}",
            ScenarioSpec::registry_names()
        )
    });
    Some(ScenarioSpec::named(name, seed).unwrap_or_else(|| {
        panic!(
            "unknown scenario '{name}'; registered scenarios: {:?}",
            ScenarioSpec::registry_names()
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert!(scenario_from_args(&args(&["--fast"]), 1).is_none());
    }

    #[test]
    fn resolves_registry_names() {
        let spec = scenario_from_args(&args(&["--fast", "--scenario", "storm-64"]), 7).unwrap();
        assert_eq!(spec.name, "storm-64");
        assert_eq!(spec.n_hosts, 64);
        assert_eq!(spec.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_name_aborts_with_catalogue() {
        scenario_from_args(&args(&["--scenario", "nope"]), 1);
    }

    #[test]
    #[should_panic(expected = "--scenario needs a name")]
    fn missing_name_aborts() {
        scenario_from_args(&args(&["--scenario"]), 1);
    }

    #[test]
    fn common_args_parses_shared_dialect() {
        let a = CommonArgs::from_vec(args(&[
            "--fast",
            "--seed",
            "9",
            "--out",
            "x.json",
            "--scenario",
            "paper-16",
        ]));
        assert!(a.fast);
        assert!(a.has_flag("--seed"));
        assert_eq!(a.flag_value("--seed").as_deref(), Some("9"));
        assert_eq!(a.flag_value("--missing"), None);
        assert_eq!(
            a.out_path("BENCH_TEST_UNSET_ENV").as_deref(),
            Some("x.json")
        );
        assert_eq!(a.scenario(3).unwrap().name, "paper-16");
    }

    #[test]
    fn out_path_falls_back_to_env() {
        let a = CommonArgs::from_vec(args(&["--fast"]));
        assert_eq!(a.out_path("BENCH_TEST_UNSET_ENV"), None);
        std::env::set_var("BENCH_TEST_FALLBACK_ENV", "from-env.json");
        assert_eq!(
            a.out_path("BENCH_TEST_FALLBACK_ENV").as_deref(),
            Some("from-env.json")
        );
        std::env::remove_var("BENCH_TEST_FALLBACK_ENV");
    }
}
