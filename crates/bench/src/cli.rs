//! Shared CLI plumbing for the figure binaries.
//!
//! Every figure binary accepts `--scenario <name>`, resolved through the
//! [`carol::scenario`] registry — the scenario-level CLI the ROADMAP
//! called for. An unknown name aborts with the catalogue, so
//! `--scenario help` (or any typo) doubles as discovery.

use carol::scenario::ScenarioSpec;

/// Parses `--scenario <name>` out of `args`, resolving the name through
/// [`ScenarioSpec::named`] with `seed`. Returns `None` when the flag is
/// absent.
///
/// # Panics
///
/// Panics (with the registry catalogue) when the flag is present but the
/// name is missing or unknown — a CLI usage error, not a runtime
/// condition.
pub fn scenario_from_args(args: &[String], seed: u64) -> Option<ScenarioSpec> {
    let i = args.iter().position(|a| a == "--scenario")?;
    let name = args.get(i + 1).unwrap_or_else(|| {
        panic!(
            "--scenario needs a name; registered scenarios: {:?}",
            ScenarioSpec::registry_names()
        )
    });
    Some(ScenarioSpec::named(name, seed).unwrap_or_else(|| {
        panic!(
            "unknown scenario '{name}'; registered scenarios: {:?}",
            ScenarioSpec::registry_names()
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert!(scenario_from_args(&args(&["--fast"]), 1).is_none());
    }

    #[test]
    fn resolves_registry_names() {
        let spec = scenario_from_args(&args(&["--fast", "--scenario", "storm-64"]), 7).unwrap();
        assert_eq!(spec.name, "storm-64");
        assert_eq!(spec.n_hosts, 64);
        assert_eq!(spec.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_name_aborts_with_catalogue() {
        scenario_from_args(&args(&["--scenario", "nope"]), 1);
    }

    #[test]
    #[should_panic(expected = "--scenario needs a name")]
    fn missing_name_aborts() {
        scenario_from_args(&args(&["--scenario"]), 1);
    }
}
