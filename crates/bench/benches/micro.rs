//! Criterion micro-benchmarks for the performance-critical primitives:
//! GON scoring/generation (the inner loop of every tabu evaluation), the
//! blocked matmul kernel at GAT shapes, node-shift neighbourhood
//! enumeration, tabu search, POT updates and one full simulator interval.
//! These quantify the decision-time budget behind Fig. 5(d).
//!
//! Set `BENCH_JSON=<path>` to also write `{name, median_ns, iters}`
//! records as a JSON array (CI archives this as `BENCH_PR.json`); every
//! record carries a `"simd"` label naming the `nn::kernel` backend that
//! dispatched (pin it with `CAROL_SIMD=scalar|avx2|neon`).

use carol::carol::{Carol, CarolConfig};
use carol::nodeshift::{mutations, neighborhood};
use carol::pot::PotDetector;
use carol::tabu::{self, TabuConfig};
use carol::ResiliencePolicy;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgesim::scheduler::LeastLoadScheduler;
use edgesim::state::{Normalizer, SystemState};
use edgesim::{FaultLoad, SchedulingDecision, SimConfig, Simulator, Topology};
use gon::{GonConfig, GonModel};
use nn::Matrix;

fn testbed_state() -> SystemState {
    let mut sim = Simulator::new(SimConfig::testbed(7));
    let mut sched = LeastLoadScheduler::new();
    let mut workload = workloads::BagOfTasks::new(workloads::BenchmarkSuite::AIoTBench, 2.0, 7);
    let mut last = SchedulingDecision::new();
    for t in 0..5 {
        let r = sim.step(workload.sample_interval(t), &mut sched);
        last = r.decision;
    }
    SystemState::capture(
        sim.topology(),
        sim.specs(),
        sim.host_states(),
        sim.tasks(),
        &last,
        &Normalizer::default(),
    )
}

fn bench_gon(c: &mut Criterion) {
    let state = testbed_state();
    let mut model = GonModel::new(GonConfig::default());
    c.bench_function("gon_score_16_hosts", |b| {
        b.iter(|| black_box(model.score(black_box(&state))))
    });
    let mut model2 = GonModel::new(GonConfig {
        gen_steps: 10,
        ..Default::default()
    });
    c.bench_function("gon_generate_10_steps", |b| {
        b.iter(|| black_box(model2.generate(black_box(&state))))
    });
}

fn bench_matmul(c: &mut Criterion) {
    // The GAT/head shapes of the GON forward and backward passes: a tall
    // activation block times a square weight, and its transpose-side
    // sibling. These isolate the blocked kernel behind
    // `gon_generate_10_steps`.
    let a_16x64 = Matrix::lcg(16, 64, 1);
    let b_64x64 = Matrix::lcg(64, 64, 2);
    c.bench_function("matmul_16x64_64x64", |bch| {
        bch.iter(|| black_box(black_box(&a_16x64).matmul(black_box(&b_64x64))))
    });
    let a_64x64 = Matrix::lcg(64, 64, 3);
    let b_64x16 = Matrix::lcg(64, 16, 4);
    c.bench_function("matmul_64x64_64x16", |bch| {
        bch.iter(|| black_box(black_box(&a_64x64).matmul(black_box(&b_64x16))))
    });
    // The fused dX = dY·Wᵀ path of every Dense/GAT backward.
    let w_16x64 = Matrix::lcg(16, 64, 5);
    c.bench_function("matmul_transpose_b_64x64_16x64t", |bch| {
        bch.iter(|| black_box(black_box(&a_64x64).matmul_transpose_b(black_box(&w_16x64))))
    });
}

fn bench_kernels(c: &mut Criterion) {
    // Record which kernel backend dispatched alongside every median —
    // the BENCH_JSON archive is meaningless without it.
    criterion::set_label("simd", nn::kernel::active().name());

    // The stacked shapes the batched engines actually run: a 16-candidate
    // × 16-host `[M | S]` block through the first encoder layer, and the
    // pooled head input at default widths (hidden 128 + gat_dim 32).
    let a_256x13 = Matrix::lcg(256, 13, 11);
    let b_13x128 = Matrix::lcg(13, 128, 12);
    c.bench_function("matmul_256x13_13x128_stacked", |bch| {
        bch.iter(|| black_box(black_box(&a_256x13).matmul(black_box(&b_13x128))))
    });
    let a_16x160 = Matrix::lcg(16, 160, 13);
    let b_160x128 = Matrix::lcg(160, 128, 14);
    c.bench_function("matmul_16x160_160x128_head", |bch| {
        bch.iter(|| black_box(black_box(&a_16x160).matmul(black_box(&b_160x128))))
    });

    // GAT attention rows (logits + softmax + aggregation) at the default
    // widths over a 64-node ring — the per-step graph-branch cost the
    // shared-embedding lever amortises.
    let mut init = nn::init::Initializer::new(17);
    let mut gat = nn::GraphAttention::new(6, 32, 16, &mut init);
    let feats = Matrix::lcg(64, 6, 18);
    let neighbors: Vec<Vec<usize>> = (0..64)
        .map(|i| vec![(i + 63) % 64, i, (i + 1) % 64])
        .collect();
    c.bench_function("gat_attention_64_ring", |b| {
        b.iter(|| black_box(gat.forward(black_box(&feats), black_box(&neighbors))))
    });
}

fn bench_topology(c: &mut Criterion) {
    let topo = Topology::balanced(16, 4).unwrap();
    c.bench_function("neighborhood_16_hosts", |b| {
        b.iter(|| black_box(neighborhood(black_box(&topo), 0, &[])))
    });
    c.bench_function("mutations_16_hosts", |b| {
        b.iter(|| black_box(mutations(black_box(&topo), &[])))
    });
    c.bench_function("tabu_search_cheap_objective", |b| {
        b.iter(|| {
            let r = tabu::search(
                topo.clone(),
                &[],
                &TabuConfig {
                    list_size: 100,
                    max_iters: 4,
                    ..Default::default()
                },
                tabu::from_fn(|t: &Topology| t.brokers().len() as f64),
            );
            black_box(r.best_score)
        })
    });
}

/// One broker failure in an `n_hosts`-host federation plus a CAROL policy
/// ready to repair it. `batch_eval` selects the batched surrogate engine
/// or the pre-batching one-candidate-at-a-time reference path — the
/// serial-vs-batched median ratio is the headline number CI archives as
/// `REPAIR_PR.json`.
fn repair_fixture(
    n_hosts: usize,
    n_brokers: usize,
    batch_eval: bool,
) -> (Simulator, SystemState, Carol) {
    repair_fixture_threads(n_hosts, n_brokers, batch_eval, None)
}

/// [`repair_fixture`] with the evaluation worker count pinned — the same
/// knob the `CAROL_THREADS` env var resolves to, fixed per bench row so
/// one process can sweep 1/2/4 workers without racing on the environment.
fn repair_fixture_threads(
    n_hosts: usize,
    n_brokers: usize,
    batch_eval: bool,
    eval_threads: Option<usize>,
) -> (Simulator, SystemState, Carol) {
    let mut sim = Simulator::new(SimConfig::federation(n_hosts, n_brokers, 3));
    let mut sched = LeastLoadScheduler::new();
    let broker = sim.topology().brokers()[0];
    sim.inject_fault(
        broker,
        FaultLoad {
            cpu: 1.0,
            ..Default::default()
        },
    );
    let report = sim.step(Vec::new(), &mut sched);
    assert!(report.failed_brokers.contains(&broker));
    let snapshot = SystemState::capture(
        sim.topology(),
        sim.specs(),
        sim.host_states(),
        sim.tasks(),
        &report.decision,
        &Normalizer::for_federation(n_hosts, n_brokers),
    );
    let config = CarolConfig {
        gon: GonConfig {
            hidden: 16,
            head_layers: 2,
            gat_dim: 8,
            gat_att: 4,
            gen_lr: 5e-3,
            gen_steps: 2,
            gen_tol: 1e-7,
            seed: 3,
        },
        tabu: TabuConfig {
            list_size: 20,
            max_iters: 1,
            ..Default::default()
        },
        batch_eval,
        eval_threads,
        ..CarolConfig::fast_test()
    };
    let policy = Carol::from_model(GonModel::new(config.gon.clone()), config, 3);
    (sim, snapshot, policy)
}

fn bench_repair(c: &mut Criterion) {
    // The full repair path — random node-shift, tabu over the node-shift
    // move set, GON generation per candidate — at the two federation
    // sizes the determinism suite gates. `_serial` is the pre-batching
    // baseline; `_batched` is the production engine (stacked forwards,
    // `par` fan-out).
    for (n_hosts, n_brokers) in [(64usize, 8usize), (128, 16)] {
        for (engine, batch_eval) in [("serial", false), ("batched", true)] {
            let (sim, snapshot, mut policy) = repair_fixture(n_hosts, n_brokers, batch_eval);
            c.bench_function(&format!("repair_{n_hosts}_{engine}"), |b| {
                b.iter(|| {
                    let repaired = policy
                        .repair(black_box(&sim), black_box(&snapshot))
                        .expect("failure must produce a repair");
                    black_box(repaired)
                })
            });
        }
    }

    // The CAROL_THREADS sweep at 64 hosts: the batched engine with the
    // worker count pinned to 1/2/4 through the same `EngineConfig` path
    // the env var resolves, one row per count so a single run prices the
    // fan-out. The serial-vs-batched crossover these rows map lives in
    // README "Kernels".
    for threads in [1usize, 2, 4] {
        let (sim, snapshot, mut policy) = repair_fixture_threads(64, 8, true, Some(threads));
        c.bench_function(&format!("repair_64_batched_t{threads}"), |b| {
            b.iter(|| {
                let repaired = policy
                    .repair(black_box(&sim), black_box(&snapshot))
                    .expect("failure must produce a repair");
                black_box(repaired)
            })
        });
    }
}

fn bench_gon_batch(c: &mut Criterion) {
    // The surrogate engine's inner loop in isolation: scoring one
    // 16-candidate batch at 64 hosts, batched vs mapped-serial.
    let sim = Simulator::new(SimConfig::federation(64, 8, 5));
    let snapshot = SystemState::capture(
        sim.topology(),
        sim.specs(),
        sim.host_states(),
        sim.tasks(),
        &SchedulingDecision::new(),
        &Normalizer::for_federation(64, 8),
    );
    let candidates: Vec<SystemState> = mutations(sim.topology(), &[])
        .into_iter()
        .take(16)
        .map(|t| snapshot.with_topology(&t))
        .collect();
    let mut model = GonModel::new(GonConfig {
        hidden: 16,
        head_layers: 2,
        gat_dim: 8,
        gat_att: 4,
        gen_lr: 5e-3,
        gen_steps: 2,
        gen_tol: 1e-7,
        seed: 5,
    });
    c.bench_function("gon_generate_16x64_serial", |b| {
        b.iter(|| {
            let total: f64 = candidates
                .iter()
                .map(|s| black_box(model.generate(s)).confidence)
                .sum();
            black_box(total)
        })
    });
    c.bench_function("gon_generate_16x64_batched", |b| {
        b.iter(|| {
            let total: f64 = model
                .generate_batch(black_box(&candidates))
                .iter()
                .map(|g| g.confidence)
                .sum();
            black_box(total)
        })
    });
}

fn bench_train(c: &mut Criterion) {
    // One offline-training epoch, serial vs batched engine, at the two
    // shapes CI tracks: the paper's 16-host testbed ("tiny") and a
    // 64-host federation. The serial/batched median ratio is the
    // headline number CI archives as `TRAIN_PR.json`; the determinism
    // suite guarantees the two engines produce bit-identical models, so
    // the ratio prices pure engine overhead.
    use gon::{train_offline, TrainConfig};
    use workloads::trace::{generate_trace, TraceConfig};

    let fixture = |label: &str, n_hosts: usize, n_brokers: usize| {
        let trace = generate_trace(
            &TraceConfig {
                intervals: 12,
                topology_period: 5,
                arrival_rate: 0.45 * n_hosts as f64,
                suite: workloads::BenchmarkSuite::DeFog,
                seed: 7,
            },
            SimConfig::federation(n_hosts, n_brokers, 7),
        );
        (label.to_string(), trace)
    };
    let gon_config = |seed: u64| GonConfig {
        hidden: 16,
        head_layers: 2,
        gat_dim: 8,
        gat_att: 4,
        gen_lr: 5e-3,
        gen_steps: 10, // the fig4 training shape — the ascent dominates
        gen_tol: 1e-7,
        seed,
    };
    for (label, trace) in [fixture("tiny", 16, 4), fixture("64", 64, 8)] {
        for (engine, batch_train) in [("serial", false), ("batched", true)] {
            let model = GonModel::new(gon_config(9));
            let config = TrainConfig {
                epochs: 1,
                minibatch: 8,
                patience: 2,
                lr: 1e-3,
                batch_train,
                train_threads: Some(1), // price the engine, not the thread pool
                ..Default::default()
            };
            c.bench_function(&format!("train_offline_{label}_{engine}"), |b| {
                b.iter(|| {
                    let mut m = model.clone();
                    black_box(train_offline(&mut m, black_box(&trace), &config))
                })
            });
        }
    }

    // The CAROL_THREADS sweep for the batched trainer at 64 hosts:
    // `train_threads` pinned to 1/2/4 — the per-row analogue of the env
    // override, so one run maps where thread fan-out pays for itself
    // (README "Kernels" records the crossover).
    let (_, trace_64) = fixture("64", 64, 8);
    for threads in [1usize, 2, 4] {
        let model = GonModel::new(gon_config(9));
        let config = TrainConfig {
            epochs: 1,
            minibatch: 8,
            patience: 2,
            lr: 1e-3,
            batch_train: true,
            train_threads: Some(threads),
            ..Default::default()
        };
        c.bench_function(&format!("train_offline_64_batched_t{threads}"), |b| {
            b.iter(|| {
                let mut m = model.clone();
                black_box(train_offline(&mut m, black_box(&trace_64), &config))
            })
        });
    }
}

fn bench_pot(c: &mut Criterion) {
    c.bench_function("pot_observe", |b| {
        let mut pot = PotDetector::carol_defaults();
        for i in 0..64 {
            pot.observe(0.8 + 0.001 * (i % 10) as f64);
        }
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = 0.8 + 0.05 * ((x >> 33) as f64 / u32::MAX as f64);
            black_box(pot.observe(v))
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_interval_16_hosts", |b| {
        let mut sim = Simulator::new(SimConfig::testbed(3));
        let mut sched = LeastLoadScheduler::new();
        let mut workload = workloads::BagOfTasks::new(workloads::BenchmarkSuite::AIoTBench, 1.2, 3);
        let mut t = 0;
        b.iter(|| {
            let arrivals = workload.sample_interval(t);
            t += 1;
            black_box(sim.step(arrivals, &mut sched).energy_wh)
        })
    });
}

criterion_group!(
    benches,
    bench_gon,
    bench_gon_batch,
    bench_matmul,
    bench_kernels,
    bench_topology,
    bench_repair,
    bench_train,
    bench_pot,
    bench_simulator
);
criterion_main!(benches);
