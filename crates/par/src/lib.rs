//! Std-only parallel-map substrate for the CAROL reproduction.
//!
//! The experiment harness fans the same simulation out over many seeds
//! (`carol::runner::run_seeds`) and many policy × seed pairs (the Fig. 5
//! sweep). Each unit of work is a pure function of its input — every seed
//! owns its RNG streams — so the fan-out is embarrassingly parallel, and
//! the only hard requirement is that parallel execution stays **bit
//! identical** to serial execution.
//!
//! [`par_map`] guarantees exactly that: workers pull items off a shared
//! atomic queue (single-queue work stealing) but every result is written
//! back to the slot of its *input index*, so the output order — and, for
//! pure per-item functions, every output bit — is independent of thread
//! count and OS scheduling.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `CAROL_THREADS` environment variable (`1`
//! forces the serial in-place path; values are clamped to ≥ 1). No
//! threads are spawned for empty or single-item inputs.
//!
//! `CAROL_THREADS` has a SIMD sibling: `CAROL_SIMD` pins the f64 kernel
//! backend (`auto|scalar|avx2|neon`) in `nn::kernel`, resolved once per
//! process exactly like the thread override. Both knobs exist for the
//! same reason — every engine is bit-identical across their settings, so
//! either can be pinned freely for debugging or CI without changing a
//! single output bit.
//!
//! This crate uses only scoped threads from `std` (borrowed inputs and
//! closures need no `'static` bound) and depends only on the vendored
//! serde stub, which [`EngineConfig`] — the engine-selection type every
//! batched subsystem shares — derives its wire format from.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "CAROL_THREADS";

/// Parses a `CAROL_THREADS`-style value: empty / unparsable strings are
/// ignored (`None`), `0` is clamped up to 1 worker.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// The worker count [`par_map`] will use: the `CAROL_THREADS` override if
/// set and parsable, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable).
pub fn thread_count() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Shared execution-engine selection for every batched subsystem.
///
/// CAROL's surrogate evaluation (`CarolConfig`) and GON training
/// (`TrainConfig`) each grew a `batched` flag and an optional thread
/// override; this type unifies them so one value describes *how* work
/// runs, and [`EngineConfig::worker_count`] is the **only** place the
/// `CAROL_THREADS` environment override is resolved.
///
/// # Examples
///
/// ```
/// let engine = par::EngineConfig::default();
/// assert!(engine.batched);
/// assert!(engine.worker_count() >= 1);
/// assert_eq!(par::EngineConfig::serial().worker_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Use the batched evaluation/training path (parallel inner loop).
    pub batched: bool,
    /// Worker-thread override; `None` defers to `CAROL_THREADS` /
    /// available parallelism via [`thread_count`].
    pub threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batched: true,
            threads: None,
        }
    }
}

impl EngineConfig {
    /// Batched engine with an explicit pinned worker count (what tests
    /// use to compare 1-vs-N bit identity without touching the
    /// environment).
    pub fn batched(threads: usize) -> Self {
        Self {
            batched: true,
            threads: Some(threads.max(1)),
        }
    }

    /// Fully serial engine: unbatched inner loops, one worker.
    pub fn serial() -> Self {
        Self {
            batched: false,
            threads: Some(1),
        }
    }

    /// Resolves the effective worker count: the explicit `threads`
    /// override if present, otherwise [`thread_count`] (which consults
    /// `CAROL_THREADS`). This is the single env-resolution point for
    /// every engine in the workspace.
    pub fn worker_count(&self) -> usize {
        self.threads.map(|n| n.max(1)).unwrap_or_else(thread_count)
    }
}

/// Order-preserving parallel map over a slice with the default
/// ([`thread_count`]) worker count.
///
/// `f` must be a pure function of the item for the parallel result to be
/// bit-identical to the serial one; the scheduling itself never reorders
/// outputs. Panics in `f` propagate to the caller once all workers have
/// stopped.
///
/// # Examples
///
/// ```
/// let squares = par::par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (1 ⇒ serial in-place, no
/// threads spawned). The `CAROL_THREADS` override is *not* consulted;
/// this is the entry point for code — and tests — that must pin the
/// parallelism level.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Single shared queue: workers race on `next` and claim whole items.
    // Results land in the slot of their input index, so output order (and
    // bit-for-bit content, for pure `f`) is schedule-independent. The
    // per-slot mutexes are uncontended — every index is claimed exactly
    // once — and exist only to hand `Send` results across threads safely.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map_threads(8, &input, |&x| x * 2);
        assert_eq!(out, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_with_uneven_work() {
        let input: Vec<u64> = (0..64).collect();
        // Uneven per-item cost: late items finish before early ones, so an
        // order bug would surface as a permuted output.
        let work = |&x: &u64| -> u64 {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial = par_map_threads(1, &input, work);
        let parallel = par_map_threads(4, &input, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_threads(64, &[1, 2, 3], |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(2, &[1, 2, 3, 4], |&x| {
                assert_ne!(x, 3, "boom");
                x
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn threads_env_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("not a number")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), Some(1), "0 clamps to 1 worker");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn engine_config_defaults_and_helpers() {
        let def = EngineConfig::default();
        assert!(def.batched);
        assert_eq!(def.threads, None);

        let serial = EngineConfig::serial();
        assert!(!serial.batched);
        assert_eq!(serial.worker_count(), 1);

        let pinned = EngineConfig::batched(4);
        assert!(pinned.batched);
        assert_eq!(pinned.worker_count(), 4);
        assert_eq!(
            EngineConfig::batched(0).worker_count(),
            1,
            "0 clamps to 1 worker"
        );
        assert_eq!(
            EngineConfig {
                batched: true,
                threads: Some(0),
            }
            .worker_count(),
            1,
            "explicit Some(0) clamps too"
        );
    }

    #[test]
    fn non_copy_results_survive() {
        let out = par_map_threads(3, &[1, 2, 3], |&x| vec![x; x]);
        assert_eq!(out, vec![vec![1], vec![2, 2], vec![3, 3, 3]]);
    }
}
