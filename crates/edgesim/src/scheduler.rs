//! The underlying task scheduler `S_t`.
//!
//! CAROL assumes "an underlying scheduler in the system independent from
//! the proposed fault-tolerance solution" (§III-A); the testbed uses the
//! GOBI surrogate scheduler \[33\]. This module provides the simulated
//! equivalent: a least-projected-interference placer that assigns each
//! pending task to the lightest-loaded worker of the LEI that admitted it,
//! which is the behaviourally relevant property (resilience models, not the
//! scheduler, are the experimental variable).

use crate::host::{HostId, HostSpec, HostState};
use crate::task::{Task, TaskId, TaskStatus};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The placement decision for one interval: task → host.
///
/// Convertible to the `[p × |H|]` one-hot matrix of §IV-A via
/// [`SchedulingDecision::one_hot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulingDecision {
    assignments: BTreeMap<TaskId, HostId>,
}

impl SchedulingDecision {
    /// Empty decision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `task` to `host` (replacing any previous assignment).
    pub fn assign(&mut self, task: TaskId, host: HostId) {
        self.assignments.insert(task, host);
    }

    /// Host chosen for `task`, if any.
    pub fn host_of(&self, task: TaskId) -> Option<HostId> {
        self.assignments.get(&task).copied()
    }

    /// Number of placed tasks.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no tasks were placed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterates `(task, host)` pairs in task-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, HostId)> + '_ {
        self.assignments.iter().map(|(t, h)| (*t, *h))
    }

    /// One-hot `[p × n_hosts]` matrix in task-id order (the `S` input of
    /// the CAROL neural network).
    pub fn one_hot(&self, n_hosts: usize) -> Vec<Vec<f64>> {
        self.assignments
            .values()
            .map(|&h| {
                let mut row = vec![0.0; n_hosts];
                if h < n_hosts {
                    row[h] = 1.0;
                }
                row
            })
            .collect()
    }
}

/// A placement policy invoked once per scheduling interval.
pub trait Scheduler {
    /// Chooses hosts for every pending task. Running tasks keep their
    /// placement; implementations should only place `Pending` tasks on
    /// non-failed hosts.
    ///
    /// `tasks` is a *view* — the simulator passes only its live tasks
    /// (pending + running), not the full completed-task archive, so one
    /// scheduling round costs O(live), independent of the run horizon.
    fn schedule(
        &mut self,
        tasks: &[&Task],
        topology: &Topology,
        specs: &[HostSpec],
        states: &[HostState],
    ) -> SchedulingDecision;
}

/// Shared admission rule: a task fits on `host` when resident RAM plus
/// already-granted admissions this interval stays under ~95% of physical
/// memory — containers are never over-committed past that.
fn ram_fits(
    host: HostId,
    task: &Task,
    specs: &[HostSpec],
    states: &[HostState],
    extra_ram: &BTreeMap<HostId, f64>,
) -> bool {
    states[host].ram
        + extra_ram.get(&host).copied().unwrap_or(0.0)
        + task.spec.ram_mb / specs[host].ram_mb
        <= 0.95
}

/// Shared admission-point resolution: the task's admitting broker if it
/// is still a live broker, otherwise the first live broker (re-homing
/// after broker death), otherwise `None` — total outage, the task stays
/// pending.
fn admission_point(task: &Task, topology: &Topology, states: &[HostState]) -> Option<HostId> {
    let live = |h: HostId| !states[h].failed;
    if task.admitted_by < topology.len()
        && matches!(
            topology.role(task.admitted_by),
            crate::topology::NodeRole::Broker
        )
        && live(task.admitted_by)
    {
        return Some(task.admitted_by);
    }
    topology.brokers().into_iter().find(|&b| live(b))
}

/// Shared candidate set: the live workers of the admitting LEI — LEIs
/// are silos (§III-A) — with the broker itself standing in for an empty
/// LEI ("act as a worker", §I).
fn lei_candidates(admit: HostId, topology: &Topology, states: &[HostState]) -> Vec<HostId> {
    let mut candidates: Vec<HostId> = topology
        .workers_of(admit)
        .into_iter()
        .filter(|&w| !states[w].failed)
        .collect();
    if candidates.is_empty() {
        candidates.push(admit);
    }
    candidates
}

/// GOBI-style least-projected-load scheduler (the simulated stand-in for
/// the gradient-based surrogate scheduler the testbed runs).
///
/// For each pending task, candidate hosts are the live workers of the
/// admitting LEI (falling back to the broker itself, then to any live
/// worker federation-wide — brokers "act as a worker" when their LEI is
/// empty, §I). The candidate minimising projected load after placement
/// wins.
#[derive(Debug, Clone, Default)]
pub struct LeastLoadScheduler;

impl LeastLoadScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }

    fn projected_load(
        task: &Task,
        host: HostId,
        specs: &[HostSpec],
        states: &[HostState],
        extra_tasks: &BTreeMap<HostId, f64>,
    ) -> f64 {
        let spec = &specs[host];
        let st = &states[host];
        let queued = extra_tasks.get(&host).copied().unwrap_or(0.0);
        let cpu_add = task.spec.cpu_work / (spec.cpu_capacity * crate::INTERVAL_SECONDS);
        let ram_add = task.spec.ram_mb / spec.ram_mb;
        st.load_score() + queued + 0.6 * cpu_add + 0.4 * ram_add
    }
}

impl Scheduler for LeastLoadScheduler {
    fn schedule(
        &mut self,
        tasks: &[&Task],
        topology: &Topology,
        specs: &[HostSpec],
        states: &[HostState],
    ) -> SchedulingDecision {
        let mut decision = SchedulingDecision::new();
        // Projected additional load per host from decisions made *this*
        // interval, so a burst of arrivals spreads out.
        let mut extra: BTreeMap<HostId, f64> = BTreeMap::new();
        // Projected RAM per host for admission control (see `ram_fits`);
        // tasks that don't fit anywhere in the LEI queue at the broker.
        let mut extra_ram: BTreeMap<HostId, f64> = BTreeMap::new();

        for task in tasks
            .iter()
            .copied()
            .filter(|t| t.status == TaskStatus::Pending)
        {
            let Some(admit) = admission_point(task, topology, states) else {
                continue; // total outage: task stays pending
            };
            let mut candidates = lei_candidates(admit, topology, states);
            candidates.retain(|&h| ram_fits(h, task, specs, states, &extra_ram));
            if candidates.is_empty() {
                continue; // no memory anywhere in the LEI: queue at broker
            }

            let best = candidates
                .into_iter()
                .min_by(|&a, &b| {
                    let la = Self::projected_load(task, a, specs, states, &extra);
                    let lb = Self::projected_load(task, b, specs, states, &extra);
                    la.partial_cmp(&lb).expect("load scores are finite")
                })
                .expect("candidate list is never empty here");

            let spec = &specs[best];
            let cpu_add = task.spec.cpu_work / (spec.cpu_capacity * crate::INTERVAL_SECONDS);
            *extra.entry(best).or_insert(0.0) +=
                0.6 * cpu_add + 0.4 * task.spec.ram_mb / spec.ram_mb;
            *extra_ram.entry(best).or_insert(0.0) += task.spec.ram_mb / spec.ram_mb;
            decision.assign(task.id, best);
        }
        decision
    }
}

/// Deterministic round-robin placer: each LEI keeps a rotating cursor
/// over its live workers and hands pending tasks out in turn, subject to
/// the same ~95% RAM admission bound as [`LeastLoadScheduler`]. The
/// contrast scheduler of the scenario engine — load-blind placement shows
/// how much of a policy's QoS is owed to the underlying scheduler.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    /// Per-broker rotation cursor, persisted across intervals so the
    /// rotation does not restart at worker 0 every interval.
    cursors: BTreeMap<HostId, usize>,
}

impl RoundRobinScheduler {
    /// Creates the scheduler with all cursors at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn schedule(
        &mut self,
        tasks: &[&Task],
        topology: &Topology,
        specs: &[HostSpec],
        states: &[HostState],
    ) -> SchedulingDecision {
        let mut decision = SchedulingDecision::new();
        let mut extra_ram: BTreeMap<HostId, f64> = BTreeMap::new();

        for task in tasks
            .iter()
            .copied()
            .filter(|t| t.status == TaskStatus::Pending)
        {
            let Some(admit) = admission_point(task, topology, states) else {
                continue; // total outage: task stays pending
            };
            let ring = lei_candidates(admit, topology, states);
            let cursor = self.cursors.entry(admit).or_insert(0);
            // Probe at most one full rotation for a host with RAM headroom.
            let placed = (0..ring.len()).find_map(|probe| {
                let host = ring[(*cursor + probe) % ring.len()];
                ram_fits(host, task, specs, states, &extra_ram).then_some((host, probe))
            });
            let Some((host, probe)) = placed else {
                continue; // no memory anywhere in the LEI: queue at broker
            };
            *cursor = (*cursor + probe + 1) % ring.len();
            *extra_ram.entry(host).or_insert(0.0) += task.spec.ram_mb / specs[host].ram_mb;
            decision.assign(task.id, host);
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn mk_task(id: TaskId, admitted_by: HostId) -> Task {
        Task::new(
            id,
            TaskSpec {
                app: "t".into(),
                cpu_work: 4000.0,
                ram_mb: 512.0,
                disk_mb: 10.0,
                net_mb: 10.0,
                deadline_s: 60.0,
            },
            0,
            admitted_by,
        )
    }

    fn setup() -> (Topology, Vec<HostSpec>, Vec<HostState>) {
        let topo = Topology::balanced(8, 2).unwrap();
        let specs = (0..8).map(HostSpec::rpi4gb).collect::<Vec<_>>();
        let states = vec![HostState::default(); 8];
        (topo, specs, states)
    }

    /// The live-view shape the simulator hands to `schedule`.
    fn refs(tasks: &[Task]) -> Vec<&Task> {
        tasks.iter().collect()
    }

    #[test]
    fn places_pending_tasks_in_admitting_lei() {
        let (topo, specs, states) = setup();
        let tasks = vec![mk_task(0, 0), mk_task(1, 1)];
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&refs(&tasks), &topo, &specs, &states);
        assert_eq!(d.len(), 2);
        let h0 = d.host_of(0).unwrap();
        let h1 = d.host_of(1).unwrap();
        assert!(topo.workers_of(0).contains(&h0));
        assert!(topo.workers_of(1).contains(&h1));
    }

    #[test]
    fn skips_running_tasks() {
        let (topo, specs, states) = setup();
        let mut t = mk_task(0, 0);
        t.status = TaskStatus::Running;
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&[&t], &topo, &specs, &states);
        assert!(d.is_empty());
    }

    #[test]
    fn avoids_failed_workers() {
        let (topo, specs, mut states) = setup();
        for w in topo.workers_of(0) {
            states[w].failed = true;
        }
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        // Falls back to the broker itself.
        assert_eq!(d.host_of(0), Some(0));
    }

    #[test]
    fn rehomes_tasks_from_dead_broker() {
        let (topo, specs, mut states) = setup();
        states[0].failed = true;
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        let h = d.host_of(0).unwrap();
        // Rehomed to broker 1's LEI.
        assert!(topo.workers_of(1).contains(&h));
    }

    #[test]
    fn total_outage_leaves_task_pending() {
        let (topo, specs, mut states) = setup();
        for state in states.iter_mut().take(8) {
            state.failed = true;
        }
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        assert!(d.is_empty());
    }

    #[test]
    fn spreads_a_burst_across_workers() {
        let (topo, specs, states) = setup();
        let tasks: Vec<Task> = (0..3).map(|i| mk_task(i, 0)).collect();
        let mut sched = LeastLoadScheduler::new();
        let d = sched.schedule(&refs(&tasks), &topo, &specs, &states);
        let hosts: std::collections::BTreeSet<_> = d.iter().map(|(_, h)| h).collect();
        assert_eq!(hosts.len(), 3, "burst should spread: {d:?}");
    }

    #[test]
    fn round_robin_rotates_through_lei_workers() {
        let (topo, specs, states) = setup();
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 0)).collect();
        let mut sched = RoundRobinScheduler::new();
        let d = sched.schedule(&refs(&tasks), &topo, &specs, &states);
        assert_eq!(d.len(), 6);
        let workers = topo.workers_of(0);
        // Six tasks over three workers: each worker gets exactly two,
        // in rotation order.
        for (i, (_, h)) in d.iter().enumerate() {
            assert_eq!(h, workers[i % workers.len()], "task {i} off-rotation");
        }
    }

    #[test]
    fn round_robin_cursor_persists_across_intervals() {
        let (topo, specs, states) = setup();
        let mut sched = RoundRobinScheduler::new();
        let d1 = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        let d2 = sched.schedule(&[&mk_task(1, 0)], &topo, &specs, &states);
        assert_ne!(
            d1.host_of(0),
            d2.host_of(1),
            "second interval must continue the rotation, not restart it"
        );
    }

    #[test]
    fn round_robin_skips_failed_workers_and_falls_back_to_broker() {
        let (topo, specs, mut states) = setup();
        for w in topo.workers_of(0) {
            states[w].failed = true;
        }
        let mut sched = RoundRobinScheduler::new();
        let d = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        assert_eq!(d.host_of(0), Some(0));
    }

    #[test]
    fn round_robin_respects_ram_admission() {
        let (topo, specs, mut states) = setup();
        // Saturate every host in LEI 0 (workers and broker).
        for h in topo.lei(0) {
            states[h].ram = 0.94;
        }
        let mut sched = RoundRobinScheduler::new();
        let d = sched.schedule(&[&mk_task(0, 0)], &topo, &specs, &states);
        assert!(d.is_empty(), "over-committed LEI must queue the task");
    }

    #[test]
    fn round_robin_is_deterministic() {
        let (topo, specs, states) = setup();
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 1)).collect();
        let mut a = RoundRobinScheduler::new();
        let mut b = RoundRobinScheduler::new();
        assert_eq!(
            a.schedule(&refs(&tasks), &topo, &specs, &states),
            b.schedule(&refs(&tasks), &topo, &specs, &states)
        );
    }

    #[test]
    fn one_hot_rows_sum_to_one() {
        let mut d = SchedulingDecision::new();
        d.assign(3, 1);
        d.assign(7, 0);
        let m = d.one_hot(4);
        assert_eq!(m.len(), 2);
        for row in &m {
            assert_eq!(row.iter().sum::<f64>(), 1.0);
        }
        assert_eq!(m[0][1], 1.0); // task 3 first (id order)
        assert_eq!(m[1][0], 1.0);
    }
}
