//! WAN/LAN latency and gateway-mobility model.
//!
//! The testbed emulates geographically distant LEIs with NetLimiter-shaped
//! inter-broker latencies (§IV-C, \[51\]) and a gateway mobility model \[52\]
//! that shifts where user tasks enter the federation over time. The
//! mobility drift is what makes the workload distribution non-stationary —
//! exactly the condition CAROL's confidence score is designed to detect.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fixed gateway→broker handoff latency in seconds, charged to every task
/// at admission on top of the entry gateway's intra-LEI link latency: the
/// HTTP redirect plus queue insertion at the broker's management plane
/// (~10 ms on the §IV-C testbed). Historically an inline `+ 0.010` in the
/// admission loop; named so the constant is documented and single-sourced.
pub const GATEWAY_BROKER_HOP_S: f64 = 0.010;

/// Latency and load-placement model of the federation's network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Number of LEIs (equal to the starting broker count).
    n_leis: usize,
    /// Symmetric inter-LEI WAN latencies in seconds.
    wan_latency_s: Vec<Vec<f64>>,
    /// Intra-LEI LAN latency in seconds.
    lan_latency_s: f64,
    /// Per-LEI gateway load weights; sum to 1. Drift over intervals.
    gateway_weights: Vec<f64>,
    /// Mobility drift magnitude per interval.
    drift: f64,
    seed: u64,
}

impl NetworkModel {
    /// Urban-edge defaults: 1–8 ms LAN, 20–80 ms WAN pairs (model of \[51\]),
    /// uniform initial gateway weights, mobility drift `0.05`/interval.
    pub fn new(n_leis: usize, seed: u64) -> Self {
        assert!(n_leis > 0, "need at least one LEI");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut wan = vec![vec![0.0; n_leis]; n_leis];
        // Index-based loops keep the symmetric fill readable and the RNG
        // draw order explicit.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_leis {
            for j in (i + 1)..n_leis {
                let l = rng.gen_range(0.020..0.080);
                wan[i][j] = l;
                wan[j][i] = l;
            }
        }
        Self {
            n_leis,
            wan_latency_s: wan,
            lan_latency_s: 0.004,
            gateway_weights: vec![1.0 / n_leis as f64; n_leis],
            drift: 0.09,
            seed,
        }
    }

    /// Number of LEIs modelled.
    pub fn n_leis(&self) -> usize {
        self.n_leis
    }

    /// One-way latency between two LEIs (LAN latency when equal).
    pub fn latency_s(&self, lei_a: usize, lei_b: usize) -> f64 {
        assert!(
            lei_a < self.n_leis && lei_b < self.n_leis,
            "LEI out of range"
        );
        if lei_a == lei_b {
            self.lan_latency_s
        } else {
            self.wan_latency_s[lei_a][lei_b]
        }
    }

    /// Transfer time in seconds for `mb` megabytes at `bw_mbps` MB/s plus
    /// propagation latency.
    pub fn transfer_s(&self, lei_a: usize, lei_b: usize, mb: f64, bw_mbps: f64) -> f64 {
        assert!(bw_mbps > 0.0, "bandwidth must be positive");
        self.latency_s(lei_a, lei_b) + mb / bw_mbps
    }

    /// Current gateway load weights over LEIs (sums to 1).
    pub fn gateway_weights(&self) -> &[f64] {
        &self.gateway_weights
    }

    /// Advances the gateway mobility model by one interval: weights take a
    /// bounded random walk and renormalise, following the massive-scale
    /// emulation model of \[52\]. `interval` seeds the step so replays are
    /// deterministic.
    pub fn step_mobility(&mut self, interval: usize) {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (interval as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for w in &mut self.gateway_weights {
            let delta = rng.gen_range(-self.drift..self.drift);
            *w = (*w + delta).max(0.02);
        }
        let total: f64 = self.gateway_weights.iter().sum();
        for w in &mut self.gateway_weights {
            *w /= total;
        }
    }

    /// Samples the LEI a new task enters through, proportionally to the
    /// current gateway weights ("gateway devices send tasks to the closest
    /// broker", with closeness evolving under mobility).
    pub fn sample_entry_lei(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, w) in self.gateway_weights.iter().enumerate() {
            acc += w;
            if x < acc {
                return i;
            }
        }
        self.n_leis - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_symmetric_and_banded() {
        let net = NetworkModel::new(4, 42);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(net.latency_s(i, j), net.latency_s(j, i));
                if i != j {
                    let l = net.latency_s(i, j);
                    assert!((0.020..0.080).contains(&l));
                }
            }
        }
        assert_eq!(net.latency_s(1, 1), 0.004);
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let net = NetworkModel::new(2, 0);
        let t = net.transfer_s(0, 0, 125.0, 125.0);
        assert!((t - (0.004 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mobility_keeps_weights_a_distribution() {
        let mut net = NetworkModel::new(4, 7);
        for interval in 0..200 {
            net.step_mobility(interval);
            let sum: f64 = net.gateway_weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(net.gateway_weights().iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn mobility_actually_drifts() {
        let mut net = NetworkModel::new(4, 9);
        let before = net.gateway_weights().to_vec();
        for interval in 0..50 {
            net.step_mobility(interval);
        }
        let after = net.gateway_weights();
        let moved: f64 = before.iter().zip(after).map(|(a, b)| (a - b).abs()).sum();
        assert!(moved > 0.05, "weights barely moved: {moved}");
    }

    #[test]
    fn mobility_is_deterministic() {
        let mut a = NetworkModel::new(3, 5);
        let mut b = NetworkModel::new(3, 5);
        for i in 0..20 {
            a.step_mobility(i);
            b.step_mobility(i);
        }
        assert_eq!(a.gateway_weights(), b.gateway_weights());
    }

    #[test]
    fn entry_sampling_follows_weights() {
        let mut net = NetworkModel::new(2, 1);
        net.gateway_weights = vec![0.9, 0.1];
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[net.sample_entry_lei(&mut rng)] += 1;
        }
        assert!(counts[0] > 4200 && counts[0] < 4800, "counts={counts:?}");
    }
}
