//! Bag-of-tasks workload model (§III-A): independent tasks entering each
//! LEI at interval starts, each with a soft SLO deadline.

use crate::host::HostId;
use serde::{Deserialize, Serialize};

/// Identifier of a task, unique within one simulation run.
pub type TaskId = usize;

/// Immutable requirements of one task, produced by a workload generator
/// (see the `workloads` crate for the DeFog / AIoTBench profiles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Application name, e.g. `"yolo"` or `"resnet18"`.
    pub app: String,
    /// Total CPU work in MIPS-seconds-equivalent units.
    pub cpu_work: f64,
    /// Resident memory while running, in MB.
    pub ram_mb: f64,
    /// Disk traffic over the task's lifetime, in MB.
    pub disk_mb: f64,
    /// Network traffic (input + output), in MB.
    pub net_mb: f64,
    /// Soft SLO deadline on response time, in seconds.
    pub deadline_s: f64,
}

impl TaskSpec {
    /// Ideal (contention-free) execution time on a host with
    /// `cpu_capacity` units/second.
    pub fn ideal_runtime_s(&self, cpu_capacity: f64) -> f64 {
        assert!(cpu_capacity > 0.0, "capacity must be positive");
        self.cpu_work / cpu_capacity
    }
}

/// Lifecycle of a task inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Waiting at a broker for placement.
    Pending,
    /// Executing on a worker.
    Running,
    /// Finished; response time is final.
    Completed,
}

/// A task instance tracked by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// Static requirements.
    pub spec: TaskSpec,
    /// Interval index at which the task arrived.
    pub arrival_interval: usize,
    /// Seconds of response time already accumulated (queueing + network +
    /// execution + stalls).
    pub elapsed_s: f64,
    /// CPU work still outstanding.
    pub remaining_work: f64,
    /// Current placement, if any.
    pub host: Option<HostId>,
    /// LEI broker that admitted the task.
    pub admitted_by: HostId,
    /// Lifecycle state.
    pub status: TaskStatus,
    /// Times this task had to restart because its host failed.
    pub restarts: usize,
}

impl Task {
    /// Creates a freshly arrived, unplaced task.
    pub fn new(id: TaskId, spec: TaskSpec, arrival_interval: usize, admitted_by: HostId) -> Self {
        let remaining_work = spec.cpu_work;
        Self {
            id,
            spec,
            arrival_interval,
            elapsed_s: 0.0,
            remaining_work,
            host: None,
            admitted_by,
            status: TaskStatus::Pending,
            restarts: 0,
        }
    }

    /// Response time so far (final once [`TaskStatus::Completed`]).
    pub fn response_time_s(&self) -> f64 {
        self.elapsed_s
    }

    /// True when the task finished after its deadline.
    pub fn violated_slo(&self) -> bool {
        self.status == TaskStatus::Completed && self.elapsed_s > self.spec.deadline_s
    }

    /// Fraction of total work completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.spec.cpu_work <= 0.0 {
            return 1.0;
        }
        (1.0 - self.remaining_work / self.spec.cpu_work).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            app: "yolo".into(),
            cpu_work: 8000.0,
            ram_mb: 800.0,
            disk_mb: 50.0,
            net_mb: 30.0,
            deadline_s: 60.0,
        }
    }

    #[test]
    fn ideal_runtime_scales_with_capacity() {
        let s = spec();
        assert_eq!(s.ideal_runtime_s(4000.0), 2.0);
        assert_eq!(s.ideal_runtime_s(8000.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ideal_runtime_rejects_zero_capacity() {
        spec().ideal_runtime_s(0.0);
    }

    #[test]
    fn new_task_is_pending_with_full_work() {
        let t = Task::new(1, spec(), 3, 0);
        assert_eq!(t.status, TaskStatus::Pending);
        assert_eq!(t.remaining_work, 8000.0);
        assert_eq!(t.progress(), 0.0);
        assert!(!t.violated_slo());
    }

    #[test]
    fn progress_and_violation() {
        let mut t = Task::new(1, spec(), 0, 0);
        t.remaining_work = 2000.0;
        assert!((t.progress() - 0.75).abs() < 1e-12);
        t.remaining_work = 0.0;
        t.status = TaskStatus::Completed;
        t.elapsed_s = 90.0;
        assert!(t.violated_slo());
        t.elapsed_s = 30.0;
        assert!(!t.violated_slo());
    }

    #[test]
    fn zero_work_task_is_complete_immediately() {
        let mut s = spec();
        s.cpu_work = 0.0;
        let t = Task::new(1, s, 0, 0);
        assert_eq!(t.progress(), 1.0);
    }
}
