//! Neural-network-facing view of the system state.
//!
//! The CAROL network (Fig. 3) consumes three inputs: performance metrics
//! `M` (per-host resource utilisation `u_i`, QoS `q_i` and task pressure
//! `t_i`, stacked as a matrix), the scheduling decision `S`, and the
//! topology graph `G`. [`SystemState`] assembles those from a
//! [`Simulator`](crate::Simulator) snapshot in a *host-count-agnostic*
//! encoding: per-host rows fed to shared encoders, so the same network
//! weights serve any federation size — the property the paper gets from
//! its graph attention network.

use crate::host::{HostSpec, HostState};
use crate::scheduler::SchedulingDecision;
use crate::task::{Task, TaskId, TaskStatus};
use crate::topology::{NodeRole, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Width of one host's metric row in `M` (see [`SystemState::metrics`]).
pub const METRIC_DIM: usize = 10;

/// Width of one host's aggregated scheduling row in `S`.
pub const SCHED_DIM: usize = 3;

/// Width of one node's GAT feature vector.
pub const GRAPH_DIM: usize = 6;

/// Deterministic role-change cost model used when projecting a snapshot
/// onto a *candidate* topology: brokers carry management CPU/RAM, and
/// workers in over-span LEIs suffer dispatch contention. The constants
/// mirror [`crate::SimConfig`]'s defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Broker management base CPU fraction.
    pub base_cpu: f64,
    /// Broker management CPU fraction per managed worker.
    pub per_worker_cpu: f64,
    /// Broker management RAM, MB.
    pub mgmt_ram_mb: f64,
    /// Workers one broker manages at full efficiency.
    pub span: usize,
    /// Weight of the broker-failure blast-radius term: with byzantine
    /// attacks striking brokers uniformly, every host's chance of being
    /// stalled next interval is proportional to `1 / broker_count`, so
    /// candidates with fewer brokers carry higher projected SLO risk.
    pub stall_risk: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            base_cpu: 0.08,
            per_worker_cpu: 0.015,
            mgmt_ram_mb: 512.0,
            span: 5,
            stall_risk: 0.08,
        }
    }
}

/// A complete `(M, S, G)` snapshot for the surrogate models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Per-host metric rows, `n_hosts × METRIC_DIM`, all in `[0, 1]`.
    pub metrics: Vec<[f64; METRIC_DIM]>,
    /// Per-host aggregated scheduling rows, `n_hosts × SCHED_DIM`.
    pub schedule: Vec<[f64; SCHED_DIM]>,
    /// Per-node GAT feature rows, `n_hosts × GRAPH_DIM`.
    pub graph_features: Vec<[f64; GRAPH_DIM]>,
    /// GAT adjacency (with self-loops) of the topology.
    pub neighbors: Vec<Vec<usize>>,
    /// The topology this snapshot was taken under.
    pub topology: Topology,
    /// Per-host RAM capacities (MB), for role-change cost projection.
    pub ram_mb: Vec<f64>,
    /// Role-change cost model (management CPU/RAM, broker span).
    pub costs: CostModel,
}

/// Reference scales used to normalise raw metrics into `[0, 1]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Normalizer {
    /// Watt-hours per interval treated as "full scale" for one host.
    pub max_energy_wh: f64,
    /// Active tasks per host treated as full scale.
    pub max_tasks: f64,
    /// Seconds treated as full-scale deadline.
    pub max_deadline_s: f64,
    /// CPU work treated as full scale for one task.
    pub max_cpu_work: f64,
}

impl Default for Normalizer {
    fn default() -> Self {
        Self {
            // A Pi 4B at peak for 5 minutes ≈ 0.58 Wh.
            max_energy_wh: 0.7,
            max_tasks: 8.0,
            max_deadline_s: 600.0,
            max_cpu_work: 2.0e6,
        }
    }
}

impl Normalizer {
    /// Reference scales for an `n_hosts`-host federation organised into
    /// `n_brokers` LEIs. All per-host scales are size-invariant (the
    /// encoding feeds shared per-host encoders), but the task-pressure
    /// full scale grows with the LEI span: pending backlog concentrates
    /// at brokers, so a broker managing a 16-worker LEI legitimately sees
    /// queues that would saturate the 4-worker default. For span ≤ 4
    /// (the 16-host testbed, 4 LEIs) this is exactly [`Normalizer::default`],
    /// so existing runs are bit-identical.
    pub fn for_federation(n_hosts: usize, n_brokers: usize) -> Self {
        let span = n_hosts.max(1).div_ceil(n_brokers.max(1));
        Self {
            max_tasks: (2.0 * span as f64).max(8.0),
            ..Self::default()
        }
    }

    /// [`Normalizer::for_federation`] extended with fleet awareness: the
    /// per-host energy full scale grows to cover the hottest host class in
    /// `specs` (a server at peak for one interval dwarfs the Pi-derived
    /// 0.7 Wh default, which would pin the energy feature at 1.0 all run).
    /// For all-Pi fleets the peak-derived scale stays below the default,
    /// so every historical scenario remains bit-identical.
    pub fn for_fleet(specs: &[crate::HostSpec], n_brokers: usize) -> Self {
        let base = Self::for_federation(specs.len(), n_brokers);
        let peak_w = specs.iter().map(|s| s.power_peak_w).fold(0.0, f64::max);
        let peak_interval_wh = peak_w * crate::INTERVAL_SECONDS / 3600.0;
        Self {
            max_energy_wh: base.max_energy_wh.max(peak_interval_wh),
            ..base
        }
    }
}

/// Per-broker aggregates of one topology, computed in a single pass so
/// [`SystemState::with_topology`] stays O(n) per candidate instead of
/// re-scanning all hosts from every per-host cost closure.
struct BrokerView {
    /// Workers managed by each host (0 for workers).
    worker_count: Vec<usize>,
    /// Σ task-pressure (metric column 7) over each broker's LEI, summed in
    /// `lei()` order — broker first, then workers ascending — so the f64
    /// chain matches the `lei().iter().sum()` it replaces bit-for-bit.
    lei_pressure: Vec<f64>,
    /// Broker count.
    n_brokers: usize,
}

impl BrokerView {
    fn build(topo: &Topology, metrics: &[[f64; METRIC_DIM]]) -> Self {
        let n = topo.len();
        let mut worker_count = vec![0usize; n];
        let mut lei_pressure = vec![0.0f64; n];
        let mut n_brokers = 0usize;
        for (h, m) in metrics.iter().enumerate() {
            if matches!(topo.role(h), NodeRole::Broker) {
                n_brokers += 1;
                lei_pressure[h] += m[7];
            }
        }
        for (h, m) in metrics.iter().enumerate() {
            if let NodeRole::Worker { broker } = topo.role(h) {
                worker_count[broker] += 1;
                lei_pressure[broker] += m[7];
            }
        }
        Self {
            worker_count,
            lei_pressure,
            n_brokers,
        }
    }
}

impl SystemState {
    /// Builds the snapshot from simulator components.
    ///
    /// Convenience wrapper over [`SystemState::capture_refs`] for callers
    /// holding a plain task slice. Interval-rate callers should prefer
    /// `capture_refs(.., &sim.live_tasks(), ..)` — completed tasks
    /// contribute nothing to any snapshot column, so the live view is
    /// bit-identical and keeps the capture cost O(live), not O(horizon).
    pub fn capture(
        topology: &Topology,
        specs: &[HostSpec],
        states: &[HostState],
        tasks: &[Task],
        decision: &SchedulingDecision,
        norm: &Normalizer,
    ) -> Self {
        let refs: Vec<&Task> = tasks.iter().collect();
        Self::capture_refs(topology, specs, states, &refs, decision, norm)
    }

    /// Builds the snapshot from a task *view* (`&[&Task]`), e.g. the
    /// simulator's live ledger.
    pub fn capture_refs(
        topology: &Topology,
        specs: &[HostSpec],
        states: &[HostState],
        tasks: &[&Task],
        decision: &SchedulingDecision,
        norm: &Normalizer,
    ) -> Self {
        let n = specs.len();
        assert_eq!(states.len(), n, "one state per host required");
        assert_eq!(topology.len(), n, "topology size mismatch");

        let mut metrics = Vec::with_capacity(n);
        let mut schedule = vec![[0.0; SCHED_DIM]; n];
        let mut graph_features = Vec::with_capacity(n);

        // Aggregate the one-hot S matrix into per-host pressure (count,
        // CPU demand, mean deadline), keeping the encoding size fixed.
        let mut sched_count = vec![0.0f64; n];
        let mut sched_work = vec![0.0f64; n];
        let mut sched_deadline = vec![0.0f64; n];
        if !decision.is_empty() {
            // Resolve decision ids through a map built once (first match
            // wins, like the linear scan this replaces) instead of an
            // O(tasks) search per placed task.
            let mut by_id: BTreeMap<TaskId, &Task> = BTreeMap::new();
            for &task in tasks {
                by_id.entry(task.id).or_insert(task);
            }
            for (task_id, host) in decision.iter() {
                if host >= n {
                    continue;
                }
                if let Some(task) = by_id.get(&task_id) {
                    sched_count[host] += 1.0;
                    sched_work[host] += task.spec.cpu_work;
                    sched_deadline[host] += task.spec.deadline_s;
                }
            }
        }

        // Per-host SLO pressure from currently resident tasks, plus the
        // pending backlog attributed to the admitting broker — deep queues
        // must be visible to the surrogates' task-pressure column.
        let mut resident_behind = vec![0.0f64; n];
        let mut resident_count = vec![0.0f64; n];
        let mut pressure_count = vec![0.0f64; n];
        for &task in tasks {
            match task.status {
                TaskStatus::Running => {
                    if let Some(h) = task.host {
                        if h < n {
                            resident_count[h] += 1.0;
                            pressure_count[h] += 1.0;
                            if task.elapsed_s > task.spec.deadline_s {
                                resident_behind[h] += 1.0;
                            }
                        }
                    }
                }
                TaskStatus::Pending => {
                    let b = topology.admitting_broker(task.admitted_by);
                    pressure_count[b] += 1.0;
                    if task.elapsed_s > task.spec.deadline_s {
                        resident_behind[b] += 1.0;
                        resident_count[b] += 1.0;
                    }
                }
                TaskStatus::Completed => {}
            }
        }

        for h in 0..n {
            let st = &states[h];
            let is_broker = matches!(topology.role(h), NodeRole::Broker);
            let slo_pressure = if resident_count[h] > 0.0 {
                resident_behind[h] / resident_count[h]
            } else {
                0.0
            };
            metrics.push([
                st.cpu.clamp(0.0, 1.0),
                st.ram.clamp(0.0, 1.0),
                st.disk.clamp(0.0, 1.0),
                st.net.clamp(0.0, 1.0),
                st.swap.clamp(0.0, 1.0),
                st.io_wait.clamp(0.0, 1.0),
                (st.energy_wh / norm.max_energy_wh).clamp(0.0, 1.0),
                (pressure_count[h] / norm.max_tasks).clamp(0.0, 1.0),
                slo_pressure.clamp(0.0, 1.0),
                if st.failed { 1.0 } else { 0.0 },
            ]);

            if sched_count[h] > 0.0 {
                schedule[h] = [
                    (sched_count[h] / norm.max_tasks).clamp(0.0, 1.0),
                    (sched_work[h] / norm.max_cpu_work).clamp(0.0, 1.0),
                    (sched_deadline[h] / sched_count[h] / norm.max_deadline_s).clamp(0.0, 1.0),
                ];
            }

            let spec = &specs[h];
            graph_features.push([
                st.cpu.clamp(0.0, 1.0),
                st.ram.clamp(0.0, 1.0),
                (spec.ram_mb / 8192.0).clamp(0.0, 1.0),
                (spec.cpu_capacity / 8000.0).clamp(0.0, 1.0),
                if is_broker { 1.0 } else { 0.0 },
                (topology.workers_of(h).len() as f64 / n as f64).clamp(0.0, 1.0),
            ]);
        }

        Self {
            metrics,
            schedule,
            graph_features,
            neighbors: topology.gat_neighbors(),
            topology: topology.clone(),
            ram_mb: specs.iter().map(|s| s.ram_mb).collect(),
            costs: CostModel::default(),
        }
    }

    /// Number of hosts in the snapshot.
    pub fn n_hosts(&self) -> usize {
        self.metrics.len()
    }

    /// Flattens `M` into a single row vector (`1 × n·METRIC_DIM`) — the
    /// tensor the GON generation loop perturbs.
    pub fn metrics_flat(&self) -> Vec<f64> {
        self.metrics.iter().flatten().copied().collect()
    }

    /// Replaces `M` from a flat row vector (inverse of
    /// [`SystemState::metrics_flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != n_hosts · METRIC_DIM`.
    pub fn set_metrics_flat(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.n_hosts() * METRIC_DIM,
            "flat metric length mismatch"
        );
        for (h, chunk) in flat.chunks_exact(METRIC_DIM).enumerate() {
            self.metrics[h].copy_from_slice(chunk);
        }
    }

    /// Projects the snapshot onto a *candidate* topology (used by tabu
    /// search and the baseline surrogates to score repair candidates
    /// without executing them).
    ///
    /// Graph features and adjacency are rebuilt, and the metric rows get
    /// the *deterministic* role-change costs applied: a newly promoted
    /// broker gains management CPU/RAM, a demoted one sheds it, and
    /// workers in LEIs beyond the management span pick up SLO pressure
    /// from dispatch contention. This is the warm-start estimate of `M_t`
    /// under the candidate — eq. 1's ascent then refines it (§III-B:
    /// "we initialize M as M_{t-1} and then converge").
    pub fn with_topology(&self, topology: &Topology) -> Self {
        assert_eq!(topology.len(), self.n_hosts(), "host count mismatch");
        let mut out = self.clone();
        let c = self.costs;
        // Tabu search calls this once per candidate over neighbourhoods
        // that grow with n², so the per-broker aggregates (worker pools,
        // LEI task pressure) are computed in one pass per topology instead
        // of re-scanning all hosts from inside every per-host closure.
        // `BrokerView` preserves the original f64 accumulation order
        // (LEI pressure sums broker-first, then workers ascending — the
        // `lei()` iteration order), so every projected metric is
        // bit-identical to the per-host scan it replaces.
        let cand_view = BrokerView::build(topology, &self.metrics);
        let base_view = BrokerView::build(&self.topology, &self.metrics);
        let mgmt_cpu = |view: &BrokerView, topo: &Topology, h: usize| -> f64 {
            if matches!(topo.role(h), NodeRole::Broker) {
                c.base_cpu + c.per_worker_cpu * view.worker_count[h] as f64
            } else {
                0.0
            }
        };
        let contention = |view: &BrokerView, topo: &Topology, h: usize| -> f64 {
            if matches!(topo.role(h), NodeRole::Broker) {
                0.0
            } else {
                let siblings = view.worker_count[topo.broker_of(h)].max(1);
                0.25 * (siblings as f64 / c.span as f64 - 1.0).max(0.0)
            }
        };
        // Expected queueing share: each LEI's task pressure is served by
        // its worker pool, so a worker's anticipated contention is the LEI
        // total divided by the pool size. Moving workers toward hot LEIs
        // lowers the per-worker share there — the rebalancing signal tabu
        // search optimises over.
        let queue_share = |view: &BrokerView, topo: &Topology, h: usize| -> f64 {
            if matches!(topo.role(h), NodeRole::Broker) {
                return 0.0;
            }
            let broker = topo.broker_of(h);
            let pressure = view.lei_pressure[broker];
            let pool = view.worker_count[broker].max(1);
            pressure / pool as f64
        };
        for h in 0..self.n_hosts() {
            let is_broker = matches!(topology.role(h), NodeRole::Broker);
            out.graph_features[h][4] = if is_broker { 1.0 } else { 0.0 };
            out.graph_features[h][5] =
                (cand_view.worker_count[h] as f64 / self.n_hosts() as f64).clamp(0.0, 1.0);

            let d_cpu = mgmt_cpu(&cand_view, topology, h) - mgmt_cpu(&base_view, &self.topology, h);
            let d_ram = (matches!(topology.role(h), NodeRole::Broker) as u8 as f64
                - matches!(self.topology.role(h), NodeRole::Broker) as u8 as f64)
                * c.mgmt_ram_mb
                / self.ram_mb.get(h).copied().unwrap_or(8192.0);
            let blast = |view: &BrokerView| c.stall_risk / view.n_brokers.max(1) as f64;
            let d_slo = contention(&cand_view, topology, h)
                - contention(&base_view, &self.topology, h)
                + 0.45
                    * (queue_share(&cand_view, topology, h)
                        - queue_share(&base_view, &self.topology, h))
                + blast(&cand_view)
                - blast(&base_view);
            out.metrics[h][0] = (out.metrics[h][0] + d_cpu).clamp(0.0, 1.0);
            out.metrics[h][1] = (out.metrics[h][1] + d_ram).clamp(0.0, 1.0);
            // Energy tracks CPU roughly linearly on constant-frequency
            // SBCs — plus the standby premium: brokers can never drop into
            // standby, so promoting a (likely idle) worker costs the
            // idle-vs-standby power gap and demoting one recovers it in
            // proportion to how idle the host is.
            let was_broker = matches!(self.topology.role(h), NodeRole::Broker);
            let standby_premium = 0.18;
            let d_standby = if !was_broker && is_broker {
                standby_premium * (1.0 - self.metrics[h][7].min(1.0))
            } else if was_broker && !is_broker {
                -standby_premium * (1.0 - self.metrics[h][7].min(1.0))
            } else {
                0.0
            };
            out.metrics[h][6] = (out.metrics[h][6] + 0.6 * d_cpu + d_standby).clamp(0.0, 1.0);
            out.metrics[h][8] = (out.metrics[h][8] + d_slo).clamp(0.0, 1.0);
        }
        out.neighbors = topology.gat_neighbors();
        out.topology = topology.clone();
        out
    }

    /// The per-host mean energy (normalised) and SLO-pressure columns of
    /// `M`, summed over hosts — the ingredients of the objective function
    /// `O(M) = α·q_energy + β·q_slo` (eq. 6–7).
    pub fn qos_components(&self) -> (f64, f64) {
        let energy: f64 = self.metrics.iter().map(|m| m[6]).sum();
        let slo: f64 = self.metrics.iter().map(|m| m[8]).sum();
        (energy, slo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::scheduler::SchedulingDecision;
    use crate::task::{Task, TaskSpec};
    use crate::topology::Topology;

    fn snapshot() -> SystemState {
        let topo = Topology::balanced(4, 2).unwrap();
        let specs: Vec<HostSpec> = (0..4).map(HostSpec::rpi4gb).collect();
        let mut states = vec![HostState::default(); 4];
        states[2].cpu = 0.5;
        states[2].energy_wh = 0.35;
        let spec = TaskSpec {
            app: "x".into(),
            cpu_work: 1.0e6,
            ram_mb: 512.0,
            disk_mb: 10.0,
            net_mb: 10.0,
            deadline_s: 300.0,
        };
        let mut task = Task::new(0, spec, 0, 0);
        task.status = TaskStatus::Running;
        task.host = Some(2);
        task.elapsed_s = 400.0; // already past deadline
        let mut decision = SchedulingDecision::new();
        decision.assign(0, 2);
        SystemState::capture(
            &topo,
            &specs,
            &states,
            &[task],
            &decision,
            &Normalizer::default(),
        )
    }

    #[test]
    fn shapes_are_consistent() {
        let s = snapshot();
        assert_eq!(s.n_hosts(), 4);
        assert_eq!(s.metrics.len(), 4);
        assert_eq!(s.schedule.len(), 4);
        assert_eq!(s.graph_features.len(), 4);
        assert_eq!(s.neighbors.len(), 4);
    }

    #[test]
    fn values_are_normalised() {
        let s = snapshot();
        for row in &s.metrics {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
            }
        }
        for row in &s.schedule {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn slo_pressure_and_energy_feed_qos() {
        let s = snapshot();
        let (energy, slo) = s.qos_components();
        assert!(energy > 0.0, "host 2's energy must appear");
        assert!(slo > 0.0, "late task must create SLO pressure");
    }

    #[test]
    fn metrics_flat_round_trips() {
        let mut s = snapshot();
        let flat = s.metrics_flat();
        assert_eq!(flat.len(), 4 * METRIC_DIM);
        let mut modified = flat.clone();
        modified[0] = 0.987;
        s.set_metrics_flat(&modified);
        assert_eq!(s.metrics[0][0], 0.987);
        assert_eq!(s.metrics_flat(), modified);
    }

    #[test]
    #[should_panic(expected = "flat metric length mismatch")]
    fn set_metrics_flat_checks_len() {
        let mut s = snapshot();
        s.set_metrics_flat(&[0.0; 3]);
    }

    #[test]
    fn with_topology_applies_role_change_costs() {
        let s = snapshot();
        let mut topo = s.topology.clone();
        let w = topo.workers()[0];
        topo.promote(w).unwrap();
        let s2 = s.with_topology(&topo);
        assert_eq!(s2.graph_features[w][4], 1.0);
        assert_ne!(s.neighbors, s2.neighbors);
        // The promoted host gains management CPU and RAM.
        assert!(s2.metrics[w][0] > s.metrics[w][0], "mgmt CPU must appear");
        assert!(s2.metrics[w][1] > s.metrics[w][1], "mgmt RAM must appear");
        // Identity projection leaves metrics untouched.
        let same = s.with_topology(&s.topology);
        assert_eq!(same.metrics, s.metrics);
    }

    #[test]
    fn with_topology_penalises_over_span_leis() {
        // Merge everything under one broker: the 14 workers exceed the
        // span of 5, so their SLO-pressure column must rise.
        let topo = Topology::balanced(16, 4).unwrap();
        let specs: Vec<HostSpec> = (0..16).map(HostSpec::rpi4gb).collect();
        let states = vec![HostState::default(); 16];
        let s = SystemState::capture(
            &topo,
            &specs,
            &states,
            &[],
            &SchedulingDecision::new(),
            &Normalizer::default(),
        );
        let mut merged = topo.clone();
        for b in [1usize, 2, 3] {
            for w in merged.workers_of(b) {
                merged.reassign(w, 0).unwrap();
            }
            merged.demote(b, 0).unwrap();
        }
        let s2 = s.with_topology(&merged);
        let (_, slo_before) = s.qos_components();
        let (_, slo_after) = s2.qos_components();
        assert!(
            slo_after > slo_before,
            "single-broker federation must show contention: {slo_before} → {slo_after}"
        );
    }

    #[test]
    fn fleet_normalizer_is_bit_identical_for_pi_fleets() {
        use crate::sim::FleetMix;
        for (n, b) in [(8usize, 2usize), (16, 4), (64, 8), (128, 16)] {
            let fed = Normalizer::for_federation(n, b);
            let fleet = Normalizer::for_fleet(&FleetMix::Pi.specs(n), b);
            assert_eq!(fleet.max_energy_wh.to_bits(), fed.max_energy_wh.to_bits());
            assert_eq!(fleet.max_tasks.to_bits(), fed.max_tasks.to_bits());
            assert_eq!(fleet.max_deadline_s.to_bits(), fed.max_deadline_s.to_bits());
            assert_eq!(fleet.max_cpu_work.to_bits(), fed.max_cpu_work.to_bits());
        }
    }

    #[test]
    fn fleet_normalizer_widens_energy_scale_for_server_classes() {
        use crate::sim::FleetMix;
        let hetero = Normalizer::for_fleet(&FleetMix::Hetero.specs(16), 4);
        // A 150 W server over a 300 s interval is 12.5 Wh at peak.
        assert!(hetero.max_energy_wh >= 12.5, "{}", hetero.max_energy_wh);
        // Only the energy scale moves; the rest stays size/fleet-invariant.
        let fed = Normalizer::for_federation(16, 4);
        assert_eq!(hetero.max_tasks, fed.max_tasks);
        assert_eq!(hetero.max_deadline_s, fed.max_deadline_s);
        assert_eq!(hetero.max_cpu_work, fed.max_cpu_work);
    }

    #[test]
    fn federation_normalizer_matches_default_at_testbed_span() {
        // Bit-identical contract for all historical configurations (span ≤ 4).
        for (n, b) in [(16, 4), (8, 2), (4, 2)] {
            let norm = Normalizer::for_federation(n, b);
            let d = Normalizer::default();
            assert_eq!(norm.max_tasks, d.max_tasks, "({n},{b})");
            assert_eq!(norm.max_energy_wh, d.max_energy_wh);
        }
    }

    #[test]
    fn federation_normalizer_widens_task_scale_with_lei_span() {
        let n64 = Normalizer::for_federation(64, 8); // span 8
        assert_eq!(n64.max_tasks, 16.0);
        let n128 = Normalizer::for_federation(128, 8); // span 16
        assert_eq!(n128.max_tasks, 32.0);
        // Per-host scales stay size-invariant.
        assert_eq!(n128.max_energy_wh, Normalizer::default().max_energy_wh);
        assert_eq!(n128.max_deadline_s, Normalizer::default().max_deadline_s);
    }

    #[test]
    fn capture_handles_128_host_snapshots() {
        let n = 128;
        let topo = Topology::balanced(n, 16).unwrap();
        let specs: Vec<HostSpec> = (0..n).map(HostSpec::rpi4gb).collect();
        let states = vec![HostState::default(); n];
        let s = SystemState::capture(
            &topo,
            &specs,
            &states,
            &[],
            &SchedulingDecision::new(),
            &Normalizer::for_federation(n, 16),
        );
        assert_eq!(s.n_hosts(), n);
        assert_eq!(s.neighbors.len(), n);
        let (qe, qs) = s.qos_components();
        assert!(qe.is_finite() && qs.is_finite());
        // Projection onto a mutated topology must also scale.
        let mut cand = topo.clone();
        let w = cand.workers()[0];
        cand.promote(w).unwrap();
        let s2 = s.with_topology(&cand);
        assert_eq!(s2.n_hosts(), n);
    }

    #[test]
    fn broker_flag_set_in_graph_features() {
        let s = snapshot();
        assert_eq!(s.graph_features[0][4], 1.0);
        assert_eq!(s.graph_features[1][4], 1.0);
        assert_eq!(s.graph_features[2][4], 0.0);
    }
}
