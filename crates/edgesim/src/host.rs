//! Edge host model: capacities, power curve, and per-interval utilisation.

use serde::{Deserialize, Serialize};

/// Identifier of a host in the federation (index into the host table).
pub type HostId = usize;

/// Static description of one edge node.
///
/// The defaults mirror the testbed of §IV-C: Raspberry Pi 4B boards with
/// 4 GB or 8 GB RAM, 1 Gbps links, and the published Pi 4B power envelope
/// (~2.7 W idle, ~6.4 W under full CPU load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Human-readable label, e.g. `"rpi8gb-03"`.
    pub name: String,
    /// CPU capacity in MIPS-equivalent units per second. A Pi 4B's four
    /// Cortex-A72 cores at 1.5 GHz are modelled as 4000 units.
    pub cpu_capacity: f64,
    /// Physical memory in MB (4096 or 8192 on the testbed).
    pub ram_mb: f64,
    /// Disk bandwidth in MB/s (SD card, ~40 MB/s).
    pub disk_bw: f64,
    /// Network bandwidth in MB/s (1 Gbps ≈ 125 MB/s).
    pub net_bw: f64,
    /// Idle power draw in watts.
    pub power_idle_w: f64,
    /// Power draw at 100% CPU in watts.
    pub power_peak_w: f64,
}

impl HostSpec {
    /// A 4 GB Raspberry Pi 4B node.
    pub fn rpi4gb(index: usize) -> Self {
        Self {
            name: format!("rpi4gb-{index:02}"),
            cpu_capacity: 4000.0,
            ram_mb: 4096.0,
            disk_bw: 40.0,
            net_bw: 125.0,
            power_idle_w: 2.7,
            power_peak_w: 6.4,
        }
    }

    /// An 8 GB Raspberry Pi 4B node.
    pub fn rpi8gb(index: usize) -> Self {
        Self {
            name: format!("rpi8gb-{index:02}"),
            cpu_capacity: 4000.0,
            ram_mb: 8192.0,
            disk_bw: 40.0,
            net_bw: 125.0,
            power_idle_w: 2.8,
            power_peak_w: 7.0,
        }
    }

    /// A server-class edge node (rack-mount Xeon-D class): ~4× a Pi's
    /// compute with 32 GB RAM, NVMe storage and a 10 Gbps uplink, but a
    /// server power envelope. Note the GAT graph features clamp RAM at
    /// 8 GB and CPU at 8000 units ([`crate::state`]), so server nodes
    /// saturate those feature channels — heterogeneity shows up in the
    /// simulator's execution and energy, not in wider encoder inputs.
    pub fn server(index: usize) -> Self {
        Self {
            name: format!("server-{index:02}"),
            cpu_capacity: 16000.0,
            ram_mb: 32768.0,
            disk_bw: 400.0,
            net_bw: 1250.0,
            power_idle_w: 45.0,
            power_peak_w: 150.0,
        }
    }

    /// An accelerator edge node (Jetson-class SoM): ~2× a Pi's effective
    /// compute at near-Pi power, 8 GB RAM, eMMC storage, 1 Gbps link.
    pub fn accelerator(index: usize) -> Self {
        Self {
            name: format!("accel-{index:02}"),
            cpu_capacity: 8000.0,
            ram_mb: 8192.0,
            disk_bw: 120.0,
            net_bw: 125.0,
            power_idle_w: 5.0,
            power_peak_w: 20.0,
        }
    }

    /// The 16-node testbed of §IV-C: eight 4 GB and eight 8 GB boards.
    pub fn testbed16() -> Vec<HostSpec> {
        let mut specs = Vec::with_capacity(16);
        for i in 0..8 {
            specs.push(HostSpec::rpi8gb(i));
        }
        for i in 0..8 {
            specs.push(HostSpec::rpi4gb(i));
        }
        specs
    }

    /// Instantaneous power draw in watts at the given CPU utilisation
    /// (clamped to `[0, 1]`); linear interpolation between idle and peak,
    /// the standard model for constant-frequency SBCs.
    pub fn power_at(&self, cpu_util: f64) -> f64 {
        let u = cpu_util.clamp(0.0, 1.0);
        self.power_idle_w + (self.power_peak_w - self.power_idle_w) * u
    }
}

/// Dynamic per-interval state of a host: the resource-utilisation metrics
/// the paper's broker samples (§III-A — CPU, RAM, disk/network bandwidth,
/// swap, buffers, I/O waits) plus failure status.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostState {
    /// CPU utilisation in `[0, 1]` (can exceed 1 transiently under fault
    /// injection before being clamped by the simulator).
    pub cpu: f64,
    /// RAM utilisation in `[0, 1]`.
    pub ram: f64,
    /// Disk-bandwidth utilisation in `[0, 1]`.
    pub disk: f64,
    /// Network-bandwidth utilisation in `[0, 1]`.
    pub net: f64,
    /// Swap-space consumption in `[0, 1]` — grows once RAM saturates.
    pub swap: f64,
    /// Fraction of the interval spent in disk/network I/O wait.
    pub io_wait: f64,
    /// Energy consumed this interval, in watt-hours.
    pub energy_wh: f64,
    /// Number of tasks resident on this host this interval.
    pub active_tasks: usize,
    /// Whether the host was unresponsive (failed) this interval.
    pub failed: bool,
}

impl HostState {
    /// True when resource over-utilisation would make the node
    /// unresponsive per the paper's byzantine fault model (§III-A): any
    /// of CPU/RAM/disk/network pinned at saturation.
    pub fn is_saturated(&self) -> bool {
        self.cpu >= 0.999 || self.ram >= 0.999 || self.disk >= 0.999 || self.net >= 0.999
    }

    /// Composite load signal in `[0, 1]` used by heuristic baselines.
    pub fn load_score(&self) -> f64 {
        0.4 * self.cpu + 0.3 * self.ram + 0.15 * self.disk + 0.15 * self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_sixteen_heterogeneous_nodes() {
        let specs = HostSpec::testbed16();
        assert_eq!(specs.len(), 16);
        let large = specs.iter().filter(|s| s.ram_mb > 5000.0).count();
        assert_eq!(large, 8);
    }

    #[test]
    fn power_curve_is_linear_and_clamped() {
        let s = HostSpec::rpi4gb(0);
        assert_eq!(s.power_at(0.0), s.power_idle_w);
        assert_eq!(s.power_at(1.0), s.power_peak_w);
        assert_eq!(s.power_at(2.0), s.power_peak_w);
        assert_eq!(s.power_at(-1.0), s.power_idle_w);
        let mid = s.power_at(0.5);
        assert!((mid - (s.power_idle_w + s.power_peak_w) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_detection() {
        let mut st = HostState::default();
        assert!(!st.is_saturated());
        st.cpu = 1.0;
        assert!(st.is_saturated());
        st.cpu = 0.5;
        st.net = 0.9995;
        assert!(st.is_saturated());
    }

    #[test]
    fn load_score_bounded() {
        let st = HostState {
            cpu: 1.0,
            ram: 1.0,
            disk: 1.0,
            net: 1.0,
            ..Default::default()
        };
        assert!((st.load_score() - 1.0).abs() < 1e-12);
        assert_eq!(HostState::default().load_score(), 0.0);
    }
}
