//! Broker–worker topology of the edge federation.
//!
//! The assignment of hosts to the broker layer or the worker layer — and of
//! each worker to exactly one broker — *is* the decision variable CAROL
//! optimises (§III-A: "the assignment of edge nodes as brokers or workers
//! and the allocation of all workers to one of a broker defines the
//! topology of the system").

use crate::host::HostId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Role of a host within the federation topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Manages a local edge infrastructure (LEI); meshes with all brokers.
    Broker,
    /// Executes tasks under the direction of `broker`.
    Worker {
        /// The broker this worker reports to.
        broker: HostId,
    },
}

/// Errors raised by topology validation and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology has no broker at all.
    NoBrokers,
    /// A worker references a host that is not a broker (or out of range).
    DanglingWorker {
        /// The offending worker.
        worker: HostId,
        /// The invalid broker reference.
        broker: HostId,
    },
    /// A host id was out of range.
    UnknownHost(HostId),
    /// The operation would orphan the workers of a broker.
    WouldOrphanWorkers(HostId),
    /// The referenced host does not have the role the operation requires.
    WrongRole(HostId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoBrokers => write!(f, "topology has no brokers"),
            TopologyError::DanglingWorker { worker, broker } => {
                write!(f, "worker {worker} references non-broker {broker}")
            }
            TopologyError::UnknownHost(h) => write!(f, "host {h} out of range"),
            TopologyError::WouldOrphanWorkers(b) => {
                write!(f, "demoting broker {b} would orphan its workers")
            }
            TopologyError::WrongRole(h) => write!(f, "host {h} has the wrong role"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Broker–worker topology over `n` hosts.
///
/// Invariants (checked by [`Topology::validate`] and preserved by every
/// mutating method): at least one broker exists, and every worker points at
/// a host whose role is `Broker`.
///
/// # Examples
///
/// ```
/// use edgesim::Topology;
/// // 8 hosts, 2 LEIs of 1 broker + 3 workers each.
/// let topo = Topology::balanced(8, 2).unwrap();
/// assert_eq!(topo.brokers().len(), 2);
/// assert_eq!(topo.workers_of(topo.brokers()[0]).len(), 3);
/// topo.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    roles: Vec<NodeRole>,
}

impl Topology {
    /// Builds a topology from explicit roles, validating invariants.
    pub fn new(roles: Vec<NodeRole>) -> Result<Self, TopologyError> {
        let t = Self { roles };
        t.validate()?;
        Ok(t)
    }

    /// Evenly partitions `n_hosts` into `n_brokers` LEIs: host `i` of each
    /// chunk's first position becomes the broker, the rest its workers.
    /// Mirrors the testbed's symmetric starting topology (§IV-C).
    pub fn balanced(n_hosts: usize, n_brokers: usize) -> Result<Self, TopologyError> {
        if n_brokers == 0 || n_brokers > n_hosts {
            return Err(TopologyError::NoBrokers);
        }
        let mut roles = vec![NodeRole::Broker; n_hosts];
        // Brokers are hosts 0..n_brokers; workers are distributed round-robin
        // so heterogeneous specs (ordered 8GB-first) spread across LEIs.
        for (w, role) in roles.iter_mut().enumerate().skip(n_brokers) {
            *role = NodeRole::Worker {
                broker: w % n_brokers,
            };
        }
        Ok(Self { roles })
    }

    /// Number of hosts (brokers + workers).
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True for a zero-host topology (never valid).
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Role of `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn role(&self, host: HostId) -> NodeRole {
        self.roles[host]
    }

    /// All roles, indexed by host.
    pub fn roles(&self) -> &[NodeRole] {
        &self.roles
    }

    /// Hosts currently acting as brokers, ascending.
    pub fn brokers(&self) -> Vec<HostId> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| matches!(r, NodeRole::Broker).then_some(i))
            .collect()
    }

    /// Hosts currently acting as workers, ascending.
    pub fn workers(&self) -> Vec<HostId> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| matches!(r, NodeRole::Worker { .. }).then_some(i))
            .collect()
    }

    /// Workers managed by `broker` (empty if `broker` is not a broker).
    pub fn workers_of(&self, broker: HostId) -> Vec<HostId> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                NodeRole::Worker { broker: b } if *b == broker => Some(i),
                _ => None,
            })
            .collect()
    }

    /// The LEI of `broker`: the broker itself plus its workers.
    pub fn lei(&self, broker: HostId) -> Vec<HostId> {
        let mut nodes = vec![broker];
        nodes.extend(self.workers_of(broker));
        nodes
    }

    /// The broker responsible for `host` (itself when `host` is a broker).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn broker_of(&self, host: HostId) -> HostId {
        match self.roles[host] {
            NodeRole::Broker => host,
            NodeRole::Worker { broker } => broker,
        }
    }

    /// Broker currently serving the host that admitted a task — the
    /// management node its traffic flows through while it is pending.
    ///
    /// `admitted_by` was recorded against the topology current at
    /// admission time; by the time a pending task is dispatched a repair
    /// may have installed a different topology, so the id is clamped into
    /// range defensively before the role lookup (the historical
    /// `admitted_by.min(n - 1)` clamp from the dispatch and
    /// state-capture paths, now in one place).
    pub fn admitting_broker(&self, admitted_by: HostId) -> HostId {
        self.broker_of(admitted_by.min(self.len().saturating_sub(1)))
    }

    /// Checks all invariants.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if !self.roles.iter().any(|r| matches!(r, NodeRole::Broker)) {
            return Err(TopologyError::NoBrokers);
        }
        for (w, role) in self.roles.iter().enumerate() {
            if let NodeRole::Worker { broker } = role {
                if *broker >= self.roles.len() {
                    return Err(TopologyError::UnknownHost(*broker));
                }
                if !matches!(self.roles[*broker], NodeRole::Broker) {
                    return Err(TopologyError::DanglingWorker {
                        worker: w,
                        broker: *broker,
                    });
                }
            }
        }
        Ok(())
    }

    /// Promotes worker `w` to the broker layer. Its previous broker keeps
    /// its other workers.
    pub fn promote(&mut self, w: HostId) -> Result<(), TopologyError> {
        if w >= self.roles.len() {
            return Err(TopologyError::UnknownHost(w));
        }
        match self.roles[w] {
            NodeRole::Worker { .. } => {
                self.roles[w] = NodeRole::Broker;
                Ok(())
            }
            NodeRole::Broker => Err(TopologyError::WrongRole(w)),
        }
    }

    /// Demotes broker `b` to a worker under `new_broker`. Fails if `b`
    /// still manages workers (reassign them first) or if `new_broker` is
    /// not a broker distinct from `b`.
    pub fn demote(&mut self, b: HostId, new_broker: HostId) -> Result<(), TopologyError> {
        if b >= self.roles.len() {
            return Err(TopologyError::UnknownHost(b));
        }
        if new_broker >= self.roles.len() {
            return Err(TopologyError::UnknownHost(new_broker));
        }
        if !matches!(self.roles[b], NodeRole::Broker) {
            return Err(TopologyError::WrongRole(b));
        }
        if b == new_broker || !matches!(self.roles[new_broker], NodeRole::Broker) {
            return Err(TopologyError::WrongRole(new_broker));
        }
        if !self.workers_of(b).is_empty() {
            return Err(TopologyError::WouldOrphanWorkers(b));
        }
        if self.brokers().len() == 1 {
            return Err(TopologyError::NoBrokers);
        }
        self.roles[b] = NodeRole::Worker { broker: new_broker };
        Ok(())
    }

    /// Reassigns worker `w` to `new_broker`.
    pub fn reassign(&mut self, w: HostId, new_broker: HostId) -> Result<(), TopologyError> {
        if w >= self.roles.len() {
            return Err(TopologyError::UnknownHost(w));
        }
        if new_broker >= self.roles.len() {
            return Err(TopologyError::UnknownHost(new_broker));
        }
        if !matches!(self.roles[w], NodeRole::Worker { .. }) {
            return Err(TopologyError::WrongRole(w));
        }
        if !matches!(self.roles[new_broker], NodeRole::Broker) {
            return Err(TopologyError::WrongRole(new_broker));
        }
        self.roles[w] = NodeRole::Worker { broker: new_broker };
        Ok(())
    }

    /// Undirected adjacency lists of the federation graph used by the GAT
    /// encoder: every worker links to its broker; brokers form a full
    /// mesh; each node carries a self-loop (§IV-A).
    pub fn gat_neighbors(&self) -> Vec<Vec<usize>> {
        let brokers = self.brokers();
        let mut adj: Vec<Vec<usize>> = (0..self.roles.len()).map(|i| vec![i]).collect();
        for (i, role) in self.roles.iter().enumerate() {
            match role {
                NodeRole::Broker => {
                    for &b in &brokers {
                        if b != i {
                            adj[i].push(b);
                        }
                    }
                    for w in self.workers_of(i) {
                        adj[i].push(w);
                    }
                }
                NodeRole::Worker { broker } => adj[i].push(*broker),
            }
        }
        adj
    }

    /// Canonical signature for tabu-list membership and hashing: worker
    /// entries store their broker, broker entries store `usize::MAX`.
    pub fn signature(&self) -> Vec<usize> {
        self.roles
            .iter()
            .map(|r| match r {
                NodeRole::Broker => usize::MAX,
                NodeRole::Worker { broker } => *broker,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_topology_matches_testbed() {
        let t = Topology::balanced(16, 4).unwrap();
        assert_eq!(t.brokers(), vec![0, 1, 2, 3]);
        assert_eq!(t.workers().len(), 12);
        for b in t.brokers() {
            assert_eq!(t.workers_of(b).len(), 3);
            assert_eq!(t.lei(b).len(), 4);
        }
    }

    #[test]
    fn balanced_rejects_degenerate_configs() {
        assert!(Topology::balanced(4, 0).is_err());
        assert!(Topology::balanced(4, 5).is_err());
        assert!(Topology::balanced(4, 4).is_ok());
    }

    #[test]
    fn validation_catches_dangling_worker() {
        let roles = vec![
            NodeRole::Broker,
            NodeRole::Worker { broker: 2 }, // host 2 is a worker, not broker
            NodeRole::Worker { broker: 0 },
        ];
        assert_eq!(
            Topology::new(roles).unwrap_err(),
            TopologyError::DanglingWorker {
                worker: 1,
                broker: 2
            }
        );
    }

    #[test]
    fn validation_requires_a_broker() {
        let roles = vec![NodeRole::Worker { broker: 0 }];
        assert_eq!(Topology::new(roles).unwrap_err(), TopologyError::NoBrokers);
    }

    #[test]
    fn promote_then_reassign_preserves_invariants() {
        let mut t = Topology::balanced(8, 2).unwrap();
        let w = t.workers()[0];
        t.promote(w).unwrap();
        assert_eq!(t.brokers().len(), 3);
        t.validate().unwrap();
        let other = t.workers()[0];
        t.reassign(other, w).unwrap();
        t.validate().unwrap();
        assert!(t.workers_of(w).contains(&other));
    }

    #[test]
    fn demote_guards_orphans_and_last_broker() {
        let mut t = Topology::balanced(4, 2).unwrap();
        // broker 0 still has a worker: refuse.
        assert_eq!(
            t.demote(0, 1).unwrap_err(),
            TopologyError::WouldOrphanWorkers(0)
        );
        // Move 0's workers to 1, then demote works.
        for w in t.workers_of(0) {
            t.reassign(w, 1).unwrap();
        }
        t.demote(0, 1).unwrap();
        t.validate().unwrap();
        assert_eq!(t.brokers(), vec![1]);
        // Demoting the last broker must fail.
        for w in t.workers_of(1) {
            let _ = w; // broker 1 has workers; also single-broker guard fires first
        }
        assert!(t.demote(1, 1).is_err());
    }

    #[test]
    fn broker_of_resolves_both_roles() {
        let t = Topology::balanced(6, 2).unwrap();
        assert_eq!(t.broker_of(0), 0);
        let w = t.workers()[0];
        let b = match t.role(w) {
            NodeRole::Worker { broker } => broker,
            _ => unreachable!(),
        };
        assert_eq!(t.broker_of(w), b);
    }

    #[test]
    fn gat_neighbors_structure() {
        let t = Topology::balanced(6, 2).unwrap();
        let adj = t.gat_neighbors();
        assert_eq!(adj.len(), 6);
        // Self-loop everywhere.
        for (i, nbrs) in adj.iter().enumerate() {
            assert!(nbrs.contains(&i));
        }
        // Brokers see each other.
        assert!(adj[0].contains(&1));
        assert!(adj[1].contains(&0));
        // A worker sees exactly its broker plus itself.
        let w = t.workers()[0];
        assert_eq!(adj[w].len(), 2);
        assert!(adj[w].contains(&t.broker_of(w)));
    }

    #[test]
    fn gat_neighbors_symmetric() {
        let t = Topology::balanced(16, 4).unwrap();
        let adj = t.gat_neighbors();
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                if j != i {
                    assert!(adj[j].contains(&i), "edge {i}->{j} not symmetric");
                }
            }
        }
    }

    #[test]
    fn signature_distinguishes_topologies() {
        let a = Topology::balanced(6, 2).unwrap();
        let mut b = a.clone();
        let w = b.workers()[0];
        b.promote(w).unwrap();
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), a.clone().signature());
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::balanced(8, 2).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
