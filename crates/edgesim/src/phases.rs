//! The interval cycle as a typed phase pipeline.
//!
//! [`Simulator::step`] is a facade over seven stages, run in this fixed
//! order every interval (Algorithm 2's per-interval cycle):
//!
//! 1. [`retire`] — drop last interval's completions from the live index;
//!    recovering hosts come back.
//! 2. [`admit`] — gateway mobility + task admission.
//! 3. [`determine_failures`] — per-host utilisation + saturation scan.
//! 4. [`restart_stranded`] — re-queue tasks stranded on failed workers.
//! 5. [`schedule_dispatch`] — place pending tasks, charge dispatch
//!    transfers.
//! 6. [`execute`] — processor-shared execution per host.
//! 7. [`report`] — cumulative accounting + the [`IntervalReport`].
//!
//! Three of the stages shard across `crates/par` workers —
//! [`determine_failures`], the per-arrival bookkeeping inside [`admit`],
//! and the per-host windows inside [`execute`] — all with the same
//! contract: the parallel work is a **pure function** of the pre-stage
//! state, computed over contiguous index segments and applied by a serial
//! in-order reduction, so every f64 accumulation chain replays in exactly
//! the serial order and results are **bit-identical at any worker
//! count**. Sharding auto-enables at [`SHARD_MIN_HOSTS`] hosts and can be
//! pinned with [`Simulator::set_step_workers`].
//!
//! The stage functions are public so they can be tested (and timed)
//! individually, but they are building blocks, not an API: calling them
//! out of the order above leaves the simulation in an unspecified (though
//! memory-safe) state. Drive experiments through [`Simulator::step`],
//! which also fills [`IntervalReport::phases`] with per-stage wall-clock.

use crate::host::{HostId, HostState};
use crate::network::GATEWAY_BROKER_HOP_S;
use crate::scheduler::{Scheduler, SchedulingDecision};
use crate::sim::{FaultLoad, IntervalReport, SimConfig, Simulator, STANDBY_POWER_FRACTION};
use crate::task::{Task, TaskId, TaskSpec, TaskStatus};
use crate::topology::{NodeRole, Topology};
use crate::INTERVAL_SECONDS;
use serde::{Deserialize, Serialize};

/// Below this federation size the sharded phases default to serial:
/// spawning workers costs more than the per-interval work saves.
pub const SHARD_MIN_HOSTS: usize = 256;

/// Wall-clock seconds spent in each stage of one [`Simulator::step`].
///
/// Carried on every [`IntervalReport`] (and accumulated by the experiment
/// engine / serve metrics endpoint) so the per-interval cost profile is
/// measurable at any scale. Timing is measurement, not simulation state:
/// the fields never feed back into the simulation and are excluded from
/// determinism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Stage 1: retire completions, recovering hosts come back.
    pub retire_s: f64,
    /// Stage 2: gateway mobility + task admission.
    pub admit_s: f64,
    /// Stage 3: per-host utilisation + saturation scan.
    pub determine_failures_s: f64,
    /// Stage 4: restart of tasks stranded on failed workers.
    pub restart_s: f64,
    /// Stage 5: scheduling + broker→worker dispatch.
    pub schedule_dispatch_s: f64,
    /// Stage 6: processor-shared execution per host.
    pub execute_s: f64,
    /// Stage 7: bookkeeping + report assembly.
    pub report_s: f64,
}

impl PhaseTimings {
    /// Total wall-clock across all stages, seconds.
    pub fn total_s(&self) -> f64 {
        self.retire_s
            + self.admit_s
            + self.determine_failures_s
            + self.restart_s
            + self.schedule_dispatch_s
            + self.execute_s
            + self.report_s
    }

    /// Componentwise sum, for accumulating per-interval timings into a
    /// per-run profile.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.retire_s += other.retire_s;
        self.admit_s += other.admit_s;
        self.determine_failures_s += other.determine_failures_s;
        self.restart_s += other.restart_s;
        self.schedule_dispatch_s += other.schedule_dispatch_s;
        self.execute_s += other.execute_s;
        self.report_s += other.report_s;
    }

    /// Fraction of total stage wall-clock spent determining failures
    /// (0 when nothing was timed) — the scale-sweep acceptance metric.
    pub fn determine_failures_frac(&self) -> f64 {
        let total = self.total_s();
        if total > 0.0 {
            self.determine_failures_s / total
        } else {
            0.0
        }
    }

    /// `(name, seconds)` rows in stage order, for tables and metrics
    /// endpoints.
    pub fn rows(&self) -> [(&'static str, f64); 7] {
        [
            ("retire", self.retire_s),
            ("admit", self.admit_s),
            ("determine_failures", self.determine_failures_s),
            ("restart", self.restart_s),
            ("schedule_dispatch", self.schedule_dispatch_s),
            ("execute", self.execute_s),
            ("report", self.report_s),
        ]
    }
}

/// Output of [`determine_failures`]: this interval's fault pressure and
/// the per-host unresponsiveness verdicts, consumed by every later stage.
pub struct FailureSet {
    /// Fault-injection pressure applied to each host this interval
    /// (drained from the pending-fault queue).
    pub fault_loads: Vec<FaultLoad>,
    /// `failed_now[h]` — host `h` is unresponsive for this interval.
    pub failed_now: Vec<bool>,
}

/// Output of [`execute`]: staged results the [`report`] stage folds into
/// the simulator's cumulative accounting.
pub struct ExecutionOutcome {
    /// `(id, response_s, violated)` per completion, in ascending host
    /// order then processor-sharing completion order (the serial order).
    pub completed: Vec<(TaskId, f64, bool)>,
    /// Next interval-end host states, ascending host order.
    pub new_states: Vec<HostState>,
    /// Seconds of stall inflicted on LEI members by broker failures.
    pub broker_stall_s: f64,
}

/// Effective worker count for the sharded stages: the
/// [`Simulator::set_step_workers`] override if present, else
/// [`par::thread_count`] at or above [`SHARD_MIN_HOSTS`] hosts, else
/// serial.
pub(crate) fn resolve_workers(sim: &Simulator, n_hosts: usize) -> usize {
    match sim.step_workers {
        Some(k) => k.max(1),
        None if n_hosts >= SHARD_MIN_HOSTS => par::thread_count(),
        None => 1,
    }
}

/// Splits `0..n` into `workers` contiguous ranges. Contiguity is what
/// keeps the in-order reductions cheap: concatenating the per-segment
/// outputs reproduces index order exactly.
fn contiguous_segments(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let seg = n.div_ceil(workers.max(1)).max(1);
    (0..n).step_by(seg).map(|s| s..(s + seg).min(n)).collect()
}

/// Stage 1: retire last interval's completions from the live index and
/// let hosts recovering from last interval's failure come back.
///
/// Retirement is deferred by one interval so that interval-end observers
/// (e.g. `SystemState::capture` over the live view) still see tasks that
/// completed within the interval just simulated.
pub fn retire(sim: &mut Simulator) {
    let tasks = &sim.tasks;
    sim.live
        .retain(|&i| tasks[i].status != TaskStatus::Completed);
    for r in &mut sim.recovering {
        if *r > 0 {
            *r -= 1;
        }
    }
}

/// Stage 2: gateway mobility + task admission. Returns the arrival count.
///
/// Runs in three passes so the per-arrival bookkeeping can shard without
/// touching the RNG stream: (1) a serial pass draws each arrival's entry
/// LEI — the phase's only RNG consumer, replayed in arrival order; (2) a
/// sharded pass maps each LEI to its entry broker and gateway-hop latency
/// (a pure function of the drawn LEI — the broker liveness table cannot
/// change mid-phase); (3) a serial in-order reduction assigns dense task
/// ids and pushes tasks into the ledger in arrival order. Bit-identical
/// to the historical single loop at any worker count.
pub fn admit(sim: &mut Simulator, arrivals: Vec<TaskSpec>) -> usize {
    let t = sim.interval;
    sim.network.step_mobility(t);
    let n_arrivals = arrivals.len();
    if n_arrivals == 0 {
        return 0;
    }

    // Pass 1 (serial): gateway entry draws, in arrival order.
    let entry_leis: Vec<usize> = arrivals
        .iter()
        .map(|_| sim.network.sample_entry_lei(&mut sim.rng))
        .collect();

    // Entry-broker table for this interval: brokers still recovering do
    // not accept traffic; with every broker down, arrivals fall back to
    // the first broker (which stalls them) rather than being dropped.
    let brokers = sim.topology.brokers();
    let live_brokers: Vec<HostId> = brokers
        .iter()
        .copied()
        .filter(|&b| sim.recovering[b] == 0)
        .collect();
    let fallback = brokers.first().copied();
    let network = &sim.network;
    let place = |lei: usize| -> Option<(HostId, f64)> {
        let broker = if live_brokers.is_empty() {
            fallback
        } else {
            Some(live_brokers[lei % live_brokers.len()])
        }?;
        // Gateway→broker hop latency charged immediately.
        Some((broker, network.latency_s(lei, lei) + GATEWAY_BROKER_HOP_S))
    };

    // Pass 2 (sharded): per-arrival placement over contiguous segments.
    let workers = resolve_workers(sim, sim.config.specs.len());
    let placements: Vec<Option<(HostId, f64)>> = if workers <= 1 {
        entry_leis.iter().map(|&lei| place(lei)).collect()
    } else {
        let segments = contiguous_segments(n_arrivals, workers);
        par::par_map_threads(workers, &segments, |range| {
            entry_leis[range.clone()]
                .iter()
                .map(|&lei| place(lei))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };

    // Pass 3 (serial, arrival order): dense id assignment + ledger push.
    for (spec, placement) in arrivals.into_iter().zip(placements) {
        let Some((broker, hop_s)) = placement else {
            continue;
        };
        let id = sim.next_task_id;
        sim.next_task_id += 1;
        let mut task = Task::new(id, spec, t, broker);
        task.elapsed_s += hop_s;
        debug_assert_eq!(id, sim.id_index.len(), "task ids are dense");
        sim.id_index.push(sim.tasks.len());
        sim.live.push(sim.tasks.len());
        sim.tasks.push(task);
    }
    n_arrivals
}

/// Read-only inputs of the per-host saturation check: each host's verdict
/// is a pure function of these, so hosts shard across workers.
struct FailureScanCtx<'a> {
    config: &'a SimConfig,
    topology: &'a Topology,
    tasks: &'a [Task],
    recovering: &'a [usize],
    running_by_host: &'a [Vec<usize>],
    queued_pending: &'a [usize],
    fault_loads: &'a [FaultLoad],
}

/// Organic (task + management) utilisation of `h` before fault load, as
/// `(cpu, ram, disk, net)`. `running_by_host[h]` comes from
/// `Simulator::live_placement`, whose ascending-index bucket order is the
/// order the historical per-host full-ledger scan summed in, so the f64
/// chains are bit-identical.
fn organic_utilisation(ctx: &FailureScanCtx<'_>, h: HostId) -> (f64, f64, f64, f64) {
    let spec = &ctx.config.specs[h];
    let is_broker = matches!(ctx.topology.role(h), NodeRole::Broker);
    let mgmt_cpu = if is_broker {
        let queued = ctx.queued_pending[h] as f64;
        ctx.config.broker_base_overhead
            + ctx.config.broker_per_worker_overhead * ctx.topology.workers_of(h).len() as f64
            + (0.012 * queued).min(0.25)
    } else {
        0.0
    };
    let mgmt_ram = if is_broker {
        ctx.config.broker_mgmt_ram_mb / spec.ram_mb
    } else {
        0.0
    };
    let mut cpu = mgmt_cpu;
    let mut ram = mgmt_ram;
    let mut disk = 0.0;
    let mut net = 0.0;
    let mut task_cpu = 0.0;
    for &i in &ctx.running_by_host[h] {
        let task = &ctx.tasks[i];
        // CPU demand share: the work a task would do this interval
        // at full speed, as a fraction of interval capacity.
        task_cpu += (task.remaining_work / (spec.cpu_capacity * INTERVAL_SECONDS)).min(1.0);
        ram += task.spec.ram_mb / spec.ram_mb;
        disk += task.spec.disk_mb / (spec.disk_bw * INTERVAL_SECONDS);
        net += task.spec.net_mb / (spec.net_bw * INTERVAL_SECONDS);
    }
    // Processor sharing degrades gracefully under pure CPU pressure —
    // task demand alone cannot render a host unresponsive (the kernel
    // still schedules the management plane). It contributes at most
    // 0.65, so byzantine failure needs fault injection or RAM/disk/
    // network exhaustion on top of organic load.
    cpu += task_cpu.min(0.65);
    (cpu, ram, disk, net)
}

/// One host's failure verdict: already recovering, or saturated past the
/// unresponsiveness threshold on any resource axis.
fn saturated(ctx: &FailureScanCtx<'_>, h: usize) -> bool {
    if ctx.recovering[h] > 0 {
        return true;
    }
    let organic = organic_utilisation(ctx, h);
    let fl = &ctx.fault_loads[h];
    organic.0 + fl.cpu >= 0.999
        || organic.1 + fl.ram >= 0.999
        || organic.2 + fl.disk >= 0.999
        || organic.3 + fl.net >= 0.999
}

/// Stage 3: failure determination for this interval.
///
/// Computes provisional utilisation from current placement + queued
/// fault loads; saturated hosts are unresponsive this interval. One
/// O(live) pass groups running tasks by host and counts each broker's
/// pending backlog, then the per-host verdicts — pure functions of that
/// snapshot — shard over contiguous host segments; a serial in-order
/// reduction latches the 1–5-minute recovery window (§IV-I) for hosts
/// that failed fresh. Bit-identical at any worker count.
pub fn determine_failures(sim: &mut Simulator) -> FailureSet {
    let n = sim.config.specs.len();
    let (running_by_host, queued_pending) = sim.live_placement(n);
    let fault_loads = std::mem::replace(&mut sim.pending_faults, vec![FaultLoad::default(); n]);
    let workers = resolve_workers(sim, n);
    let ctx = FailureScanCtx {
        config: &sim.config,
        topology: &sim.topology,
        tasks: &sim.tasks,
        recovering: &sim.recovering,
        running_by_host: &running_by_host,
        queued_pending: &queued_pending,
        fault_loads: &fault_loads,
    };
    let failed_now: Vec<bool> = if workers <= 1 {
        (0..n).map(|h| saturated(&ctx, h)).collect()
    } else {
        let segments = contiguous_segments(n, workers);
        par::par_map_threads(workers, &segments, |range| {
            range
                .clone()
                .map(|h| saturated(&ctx, h))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    // In-order reduction: recovery takes 1–5 minutes — down for the rest
    // of this interval, live again next interval.
    for (h, &fell) in failed_now.iter().enumerate() {
        if fell && sim.recovering[h] == 0 {
            sim.recovering[h] = 1;
        }
    }
    FailureSet {
        fault_loads,
        failed_now,
    }
}

/// Stage 4: restart tasks stranded on failed workers (the paper's
/// worker-failure rule: rerun in the LEI; placement happens via the
/// scheduler in [`schedule_dispatch`]). Returns the restart count.
pub fn restart_stranded(sim: &mut Simulator, failures: &FailureSet) -> usize {
    let mut restarted = 0usize;
    for &idx in &sim.live {
        let task = &mut sim.tasks[idx];
        if task.status == TaskStatus::Running {
            if let Some(h) = task.host {
                if failures.failed_now[h] {
                    task.remaining_work = task.spec.cpu_work;
                    task.host = None;
                    task.status = TaskStatus::Pending;
                    task.restarts += 1;
                    restarted += 1;
                }
            }
        }
    }
    sim.total_restarts += restarted;
    restarted
}

/// Stage 5: scheduling of pending tasks + broker→worker dispatch.
///
/// The scheduler sees a failure-aware view of host state; decisions
/// against dying hosts are skipped, and every accepted placement is
/// charged its dispatch transfer latency from the admitting broker's LEI.
pub fn schedule_dispatch(
    sim: &mut Simulator,
    scheduler: &mut dyn Scheduler,
    failures: &FailureSet,
) -> SchedulingDecision {
    let mut fail_view = sim.states.clone();
    for (view, &fell) in fail_view.iter_mut().zip(&failures.failed_now) {
        view.failed = fell;
    }
    let live_view: Vec<&Task> = sim.live.iter().map(|&i| &sim.tasks[i]).collect();
    let decision = scheduler.schedule(&live_view, &sim.topology, &sim.config.specs, &fail_view);
    drop(live_view);
    for (task_id, host) in decision.iter() {
        if failures.failed_now[host] {
            continue; // stale decision against a dying host: skip
        }
        let Some(&idx) = sim.id_index.get(task_id) else {
            continue;
        };
        if sim.tasks[idx].status != TaskStatus::Pending {
            continue;
        }
        // Broker→worker dispatch transfer.
        let from = sim.topology.admitting_broker(sim.tasks[idx].admitted_by);
        let lei_a = sim.lei_index_of(from);
        let lei_b = sim.lei_index_of(host);
        let transfer = sim.network.transfer_s(
            lei_a,
            lei_b,
            sim.tasks[idx].spec.net_mb,
            sim.config.specs[host].net_bw,
        );
        let task = &mut sim.tasks[idx];
        task.status = TaskStatus::Running;
        task.host = Some(host);
        task.elapsed_s += transfer;
    }
    decision
}

/// Read-only inputs shared by every host's execution window in one
/// interval. Each host's window is a pure function of these, so hosts can
/// be stepped on any worker.
struct HostStepCtx<'a> {
    tasks: &'a [Task],
    topology: &'a Topology,
    config: &'a SimConfig,
    per_host_tasks: &'a [Vec<usize>],
    queued_now: &'a [usize],
    fault_loads: &'a [FaultLoad],
    failed_now: &'a [bool],
    stalled_host: &'a [bool],
    shift_penalty_s: &'a [f64],
}

/// One host's staged execution-window results: everything the serial
/// loop would have mutated in place, applied in ascending host order by
/// the reduction so accumulation order matches the serial reference.
struct HostStepOutcome {
    state: HostState,
    /// `(task index, remaining_work, elapsed_s, completed)` for every
    /// resident task.
    task_updates: Vec<(usize, f64, f64, bool)>,
    /// `(id, response_s, violated)` in processor-sharing completion order.
    completed: Vec<(TaskId, f64, bool)>,
    /// Host was stalled by a broker failure without failing itself —
    /// contributes one interval of broker stall to the report.
    stalled_not_failed: bool,
}

/// One host's execution window: identical arithmetic, in identical
/// order, to the old serial loop body — task state is shadowed in local
/// vectors parallel to the sorted active list instead of mutated through
/// `&mut self`, which is what makes the function pure and shardable.
fn step_host(ctx: &HostStepCtx<'_>, h: usize) -> HostStepOutcome {
    let spec_h = &ctx.config.specs[h];
    let fl = ctx.fault_loads[h];
    let failed = ctx.failed_now[h];
    let is_broker = matches!(ctx.topology.role(h), NodeRole::Broker);
    let mgmt_cpu = if is_broker {
        // Admission/queue management grows with the backlog parked at
        // this broker — deep queues are the "processing bottleneck" of
        // §I that makes loaded brokers fragile.
        let queued = ctx.queued_now[h] as f64;
        ctx.config.broker_base_overhead
            + ctx.config.broker_per_worker_overhead * ctx.topology.workers_of(h).len() as f64
            + (0.012 * queued).min(0.25)
    } else {
        0.0
    };
    let mgmt_ram = if is_broker {
        ctx.config.broker_mgmt_ram_mb / spec_h.ram_mb
    } else {
        0.0
    };

    let task_idxs = &ctx.per_host_tasks[h];

    // RAM pressure from resident tasks.
    let resident_ram: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.ram_mb)
        .sum::<f64>()
        / spec_h.ram_mb;
    let ram_util = resident_ram + mgmt_ram + fl.ram;
    let ram = ram_util.min(1.0);
    let swap = (ram_util - 1.0).clamp(0.0, 1.0);

    // Disk / network pressure.
    let disk_demand: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.disk_mb)
        .sum::<f64>()
        / (spec_h.disk_bw * INTERVAL_SECONDS);
    let net_demand: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.net_mb)
        .sum::<f64>()
        / (spec_h.net_bw * INTERVAL_SECONDS);
    let disk = (disk_demand + fl.disk).min(1.0);
    let net = (net_demand + fl.net).min(1.0);
    let io_wait = (0.5 * swap + 0.3 * disk + 0.2 * net).min(1.0);

    // Effective task time this interval after stalls/penalties.
    let shift_pen = ctx.shift_penalty_s[h];
    let mut usable_s: f64 = INTERVAL_SECONDS - shift_pen;
    if failed || ctx.stalled_host[h] {
        usable_s = 0.0;
    }
    usable_s = usable_s.max(0.0);
    let stall_s = INTERVAL_SECONDS - usable_s;
    let stalled_not_failed = ctx.stalled_host[h] && !failed;

    // Thrashing: swap pressure halves effective capacity (§I:
    // storage-mapped virtual memory over congested backhaul).
    let thrash = 1.0 / (1.0 + 2.0 * swap);
    // Broker-bottleneck contention (§I): a worker whose broker manages
    // more than `broker_span` peers runs degraded, waiting on
    // dispatch/synchronisation from the saturated broker.
    let span_eff = if is_broker {
        1.0
    } else {
        let siblings = ctx
            .topology
            .workers_of(ctx.topology.broker_of(h))
            .len()
            .max(1);
        (ctx.config.broker_span as f64 / siblings as f64).min(1.0)
    };
    let cap_frac = (1.0 - mgmt_cpu - fl.cpu).max(0.0);
    let capacity_per_s = spec_h.cpu_capacity * cap_frac * thrash * span_eff;

    // Exact processor sharing within the usable window: with k active
    // tasks each runs at capacity/k; process completions in order of
    // remaining work. Work/elapsed live in shadow vectors parallel to
    // `active`.
    let mut active: Vec<usize> = task_idxs.clone();
    active.sort_by(|&a, &b| {
        ctx.tasks[a]
            .remaining_work
            .partial_cmp(&ctx.tasks[b].remaining_work)
            .expect("work values are finite")
    });
    let mut rem: Vec<f64> = active
        .iter()
        .map(|&j| ctx.tasks[j].remaining_work)
        .collect();
    let mut elapsed: Vec<f64> = active.iter().map(|&j| ctx.tasks[j].elapsed_s).collect();
    let mut done = vec![false; active.len()];
    let mut completed = Vec::new();
    let mut time_left = usable_s;
    let mut work_done_total = 0.0;
    let mut i = 0;
    while i < active.len() && time_left > 0.0 && capacity_per_s > 0.0 {
        let k = (active.len() - i) as f64;
        let rate = capacity_per_s / k;
        let t_finish = rem[i] / rate;
        if t_finish <= time_left {
            // Head task completes inside the window.
            let elapsed_until_done = usable_s - time_left + t_finish;
            for r in &mut rem[i..] {
                *r -= rate * t_finish;
                work_done_total += rate * t_finish;
            }
            rem[i] = 0.0;
            done[i] = true;
            elapsed[i] += stall_s + elapsed_until_done;
            let task = &ctx.tasks[active[i]];
            let violated = elapsed[i] > task.spec.deadline_s;
            completed.push((task.id, elapsed[i], violated));
            time_left -= t_finish;
            i += 1;
        } else {
            for r in &mut rem[i..] {
                *r -= rate * time_left;
                work_done_total += rate * time_left;
            }
            time_left = 0.0;
        }
    }
    let time_left_after = time_left;
    // Survivors carry the whole interval in elapsed time. (Everything in
    // `active` was Running, so the serial loop's status guard always
    // held here.)
    for e in &mut elapsed[i..] {
        *e += INTERVAL_SECONDS;
    }

    // CPU utilisation: busy-time accounting. While any task is resident
    // the cores spin at their allocated fraction whether the cycles are
    // productive or lost to thrashing / broker-span contention —
    // inefficient topologies therefore *burn energy*, not just time.
    // `work_done_total` is kept for diagnostics.
    let busy_s = usable_s - time_left_after;
    let _ = work_done_total;
    let work_util = if INTERVAL_SECONDS > 0.0 {
        (busy_s / INTERVAL_SECONDS) * cap_frac
    } else {
        0.0
    };
    let mut cpu = (work_util + mgmt_cpu + fl.cpu).min(1.0);
    if failed {
        // An unresponsive node pins whichever resource the fault hit.
        cpu = cpu.max((fl.cpu > 0.0) as u8 as f64);
    }

    // Energy: linear power curve over the interval (reboot = idle-ish).
    // Workers with no resident tasks drop into standby (§V-C: the
    // "remaining hosts in standby mode to conserve energy").
    let standby = !is_broker && task_idxs.is_empty() && !failed && fl.cpu == 0.0;
    let util_for_power = if failed { 0.2 } else { cpu };
    let power_w = if standby {
        STANDBY_POWER_FRACTION * spec_h.power_idle_w
    } else {
        spec_h.power_at(util_for_power)
    };
    let energy_wh = power_w * INTERVAL_SECONDS / 3600.0;

    let task_updates = active
        .iter()
        .enumerate()
        .map(|(pos, &j)| (j, rem[pos], elapsed[pos], done[pos]))
        .collect();

    HostStepOutcome {
        state: HostState {
            cpu,
            ram,
            disk,
            net,
            swap,
            io_wait,
            energy_wh,
            active_tasks: task_idxs.len(),
            failed,
        },
        task_updates,
        completed,
        stalled_not_failed,
    }
}

/// Stage 6: execution with processor sharing per host.
///
/// Scheduling just moved tasks Pending→Running, so the live set is
/// regrouped (the pending backlog per broker changed too); members of a
/// failed broker's LEI are stalled first ("all active tasks within the
/// LEI and all incoming tasks ... are impacted", §I). Each host's
/// execution window is a pure function of the pre-stage ledger plus this
/// interval's per-host inputs (a task is resident on exactly one host),
/// so hosts shard across `par` workers in contiguous segments. All
/// mutations are staged into per-host outcomes and applied serially in
/// ascending host order, reproducing the serial loop's f64 accumulation
/// chains exactly — bit-identical at any worker count.
pub fn execute(sim: &mut Simulator, failures: &FailureSet) -> ExecutionOutcome {
    let n = sim.config.specs.len();

    // Broker-failure stalls.
    let mut stalled_host = vec![false; n];
    let mut broker_stall_s = 0.0;
    for b in sim.topology.brokers() {
        if failures.failed_now[b] {
            for member in sim.topology.lei(b) {
                stalled_host[member] = true;
            }
        }
    }

    let (per_host_tasks, queued_now) = sim.live_placement(n);
    let shift_pen_all = std::mem::replace(&mut sim.shift_penalty_s, vec![0.0; n]);
    let workers = resolve_workers(sim, n);
    let ctx = HostStepCtx {
        tasks: &sim.tasks,
        topology: &sim.topology,
        config: &sim.config,
        per_host_tasks: &per_host_tasks,
        queued_now: &queued_now,
        fault_loads: &failures.fault_loads,
        failed_now: &failures.failed_now,
        stalled_host: &stalled_host,
        shift_penalty_s: &shift_pen_all,
    };
    let segments = contiguous_segments(n, workers);
    let outcomes: Vec<HostStepOutcome> = par::par_map_threads(workers, &segments, |range| {
        range
            .clone()
            .map(|h| step_host(&ctx, h))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // In-order reduction: ascending host order, like the serial loop.
    let mut completed: Vec<(TaskId, f64, bool)> = Vec::new();
    let mut new_states = Vec::with_capacity(n);
    for outcome in outcomes {
        if outcome.stalled_not_failed {
            broker_stall_s += INTERVAL_SECONDS;
        }
        for (idx, rem, elapsed, done) in outcome.task_updates {
            let task = &mut sim.tasks[idx];
            task.remaining_work = rem;
            task.elapsed_s = elapsed;
            if done {
                task.status = TaskStatus::Completed;
            }
        }
        completed.extend(outcome.completed);
        new_states.push(outcome.state);
    }

    // Pending tasks (unplaced, e.g. dead broker or outage) also wait.
    for &idx in &sim.live {
        let task = &mut sim.tasks[idx];
        if task.status == TaskStatus::Pending {
            task.elapsed_s += INTERVAL_SECONDS;
        }
    }

    ExecutionOutcome {
        completed,
        new_states,
        broker_stall_s,
    }
}

/// Stage 7: cumulative bookkeeping and report assembly. Installs the new
/// host states, folds completions into the energy/QoS accounting,
/// records the failed-broker list the resilience policy reads, and
/// advances the interval counter. The facade fills
/// [`IntervalReport::phases`] after timing this stage.
pub fn report(
    sim: &mut Simulator,
    n_arrivals: usize,
    restarted: usize,
    decision: SchedulingDecision,
    failures: FailureSet,
    exec: ExecutionOutcome,
) -> IntervalReport {
    let t = sim.interval;
    let n = sim.config.specs.len();
    let energy: f64 = exec.new_states.iter().map(|s| s.energy_wh).sum();
    sim.total_energy_wh += energy;
    for &(_, resp, violated) in &exec.completed {
        sim.completed_count += 1;
        sim.response_times.push(resp);
        if violated {
            sim.violation_count += 1;
        }
    }
    sim.states = exec.new_states;
    let failed_hosts: Vec<HostId> = (0..n).filter(|&h| failures.failed_now[h]).collect();
    let failed_brokers: Vec<HostId> = sim
        .topology
        .brokers()
        .into_iter()
        .filter(|&b| failures.failed_now[b])
        .collect();
    sim.last_failed_brokers = failed_brokers.clone();
    sim.interval += 1;

    IntervalReport {
        interval: t,
        energy_wh: energy,
        completed: exec.completed,
        arrivals: n_arrivals,
        failed_hosts,
        failed_brokers,
        restarted_tasks: restarted,
        broker_stall_s: exec.broker_stall_s,
        decision,
        phases: PhaseTimings::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::LeastLoadScheduler;
    use crate::sim::SimConfig;

    fn quick_spec(work: f64) -> TaskSpec {
        TaskSpec {
            app: "test".into(),
            cpu_work: work,
            ram_mb: 256.0,
            disk_mb: 5.0,
            net_mb: 5.0,
            deadline_s: 400.0,
        }
    }

    /// Drives `sim` one interval through the individual stages, exactly
    /// as the facade composes them (minus timing).
    fn step_by_stages(
        sim: &mut Simulator,
        arrivals: Vec<TaskSpec>,
        scheduler: &mut dyn Scheduler,
    ) -> IntervalReport {
        retire(sim);
        let n_arrivals = admit(sim, arrivals);
        let failures = determine_failures(sim);
        let restarted = restart_stranded(sim, &failures);
        let decision = schedule_dispatch(sim, scheduler, &failures);
        let exec = execute(sim, &failures);
        report(sim, n_arrivals, restarted, decision, failures, exec)
    }

    #[test]
    fn stagewise_stepping_matches_facade_bitwise() {
        let mut facade = Simulator::new(SimConfig::small(8, 2, 42));
        let mut staged = Simulator::new(SimConfig::small(8, 2, 42));
        let mut sched_a = LeastLoadScheduler::new();
        let mut sched_b = LeastLoadScheduler::new();
        for t in 0..12 {
            let arrivals: Vec<TaskSpec> = (0..(t % 4)).map(|_| quick_spec(300_000.0)).collect();
            if t % 3 == 0 {
                let load = FaultLoad {
                    cpu: 1.0,
                    ..Default::default()
                };
                facade.inject_fault(t % 8, load);
                staged.inject_fault(t % 8, load);
            }
            let ra = facade.step(arrivals.clone(), &mut sched_a);
            let rb = step_by_stages(&mut staged, arrivals, &mut sched_b);
            assert_eq!(ra.energy_wh.to_bits(), rb.energy_wh.to_bits());
            assert_eq!(ra.completed, rb.completed);
            assert_eq!(ra.failed_hosts, rb.failed_hosts);
            assert_eq!(ra.restarted_tasks, rb.restarted_tasks);
            assert_eq!(ra.broker_stall_s.to_bits(), rb.broker_stall_s.to_bits());
        }
    }

    #[test]
    fn retire_drops_completions_and_recovers_hosts() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 7));
        let mut sched = LeastLoadScheduler::new();
        sim.step(vec![quick_spec(4000.0)], &mut sched);
        assert_eq!(sim.live_task_count(), 1, "completion retires next step");
        sim.recovering[3] = 1;
        retire(&mut sim);
        assert_eq!(sim.live_task_count(), 0);
        assert_eq!(sim.recovering[3], 0);
    }

    #[test]
    fn admit_assigns_dense_ids_and_charges_gateway_hop() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 7));
        let n = admit(&mut sim, vec![quick_spec(1000.0), quick_spec(2000.0)]);
        assert_eq!(n, 2);
        assert_eq!(sim.tasks.len(), 2);
        for (i, task) in sim.tasks.iter().enumerate() {
            assert_eq!(task.id, i);
            assert!(
                task.elapsed_s >= GATEWAY_BROKER_HOP_S,
                "gateway hop must be charged at admission"
            );
            assert_eq!(task.status, TaskStatus::Pending);
        }
    }

    #[test]
    fn admit_is_bit_identical_across_worker_counts() {
        let runs: Vec<Vec<u64>> = [Some(1), Some(3), Some(4)]
            .into_iter()
            .map(|workers| {
                let mut sim = Simulator::new(SimConfig::small(8, 2, 99));
                sim.set_step_workers(workers);
                let arrivals: Vec<TaskSpec> =
                    (0..37).map(|i| quick_spec(1000.0 + i as f64)).collect();
                admit(&mut sim, arrivals);
                sim.tasks.iter().map(|t| t.elapsed_s.to_bits()).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn determine_failures_is_bit_identical_across_worker_counts() {
        let run = |workers: Option<usize>| -> (Vec<bool>, Vec<usize>) {
            let mut sim = Simulator::new(SimConfig::small(16, 4, 11));
            let mut sched = LeastLoadScheduler::new();
            // Build up organic load first so the scan sums real chains.
            for _ in 0..3 {
                let arrivals: Vec<TaskSpec> = (0..6).map(|_| quick_spec(800_000.0)).collect();
                sim.step(arrivals, &mut sched);
            }
            sim.set_step_workers(workers);
            sim.inject_fault(
                2,
                FaultLoad {
                    ram: 1.0,
                    ..Default::default()
                },
            );
            retire(&mut sim);
            admit(&mut sim, Vec::new());
            let failures = determine_failures(&mut sim);
            (failures.failed_now, sim.recovering.clone())
        };
        let serial = run(Some(1));
        assert_eq!(serial, run(Some(3)));
        assert_eq!(serial, run(Some(4)));
        assert!(serial.0[2], "RAM-saturated host must fail");
    }

    #[test]
    fn phase_timings_accumulate_and_total() {
        let mut acc = PhaseTimings::default();
        let one = PhaseTimings {
            retire_s: 1.0,
            admit_s: 2.0,
            determine_failures_s: 3.0,
            restart_s: 4.0,
            schedule_dispatch_s: 5.0,
            execute_s: 6.0,
            report_s: 7.0,
        };
        acc.accumulate(&one);
        acc.accumulate(&one);
        assert_eq!(acc.total_s(), 2.0 * 28.0);
        assert!((acc.determine_failures_frac() - 3.0 / 28.0).abs() < 1e-12);
        assert_eq!(one.rows()[2], ("determine_failures", 3.0));
    }

    #[test]
    fn step_reports_phase_timings() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 1));
        let mut sched = LeastLoadScheduler::new();
        let r = sim.step(vec![quick_spec(10_000.0)], &mut sched);
        assert!(r.phases.total_s() > 0.0, "facade must time its stages");
        assert!(r.phases.execute_s > 0.0);
    }
}
