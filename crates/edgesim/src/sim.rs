//! Interval-driven simulation engine.
//!
//! One [`Simulator::step`] models one five-minute scheduling interval
//! (§III-A): task arrival via the gateway model, placement by the
//! underlying scheduler, processor-shared execution with contention,
//! failure effects, and energy/QoS accounting. Resilience policies interact
//! with the engine exactly where Algorithm 2 does: they read
//! [`Simulator::failed_brokers`] after a step and install a repaired
//! topology with [`Simulator::set_topology`] before the next one.

use crate::host::{HostId, HostSpec, HostState};
use crate::network::NetworkModel;
use crate::scheduler::{Scheduler, SchedulingDecision};
use crate::task::{Task, TaskId, TaskSpec, TaskStatus};
use crate::topology::{NodeRole, Topology};
use crate::INTERVAL_SECONDS;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Fraction of idle power drawn by a task-less worker in standby mode.
pub const STANDBY_POWER_FRACTION: f64 = 0.45;

/// Extra resource pressure applied to one host for one interval by the
/// fault-injection module (CPU hog, memory thrasher, IOZone, DDoS — §IV-F).
/// Values are utilisation fractions added on top of organic load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLoad {
    /// Added CPU utilisation.
    pub cpu: f64,
    /// Added RAM utilisation.
    pub ram: f64,
    /// Added disk-bandwidth utilisation.
    pub disk: f64,
    /// Added network-bandwidth utilisation.
    pub net: f64,
}

impl FaultLoad {
    /// Componentwise sum.
    pub fn merge(&mut self, other: FaultLoad) {
        self.cpu += other.cpu;
        self.ram += other.ram;
        self.disk += other.disk;
        self.net += other.net;
    }
}

/// Hardware composition of a federation: which [`HostSpec`] classes the
/// host table is built from. The historical constructors are all
/// [`FleetMix::Pi`]; [`FleetMix::Hetero`] mixes server-class and
/// accelerator nodes into the Pi fabric so scenarios can probe resilience
/// when capacity — and therefore placement pressure and blast radius — is
/// unevenly distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FleetMix {
    /// Alternating 8 GB / 4 GB Raspberry Pi boards (the testbed mix).
    #[default]
    Pi,
    /// Heterogeneous: every 8th host a server, every 8th (offset 4) an
    /// accelerator, Pis elsewhere — one server + one accelerator per
    /// 8-host rack, mirroring a small edge site with one beefy node and
    /// one GPU box per rack.
    Hetero,
}

impl FleetMix {
    /// Builds the host inventory for an `n_hosts` federation.
    pub fn specs(self, n_hosts: usize) -> Vec<HostSpec> {
        (0..n_hosts)
            .map(|i| match self {
                FleetMix::Pi => {
                    if i % 2 == 0 {
                        HostSpec::rpi8gb(i)
                    } else {
                        HostSpec::rpi4gb(i)
                    }
                }
                FleetMix::Hetero => match i % 8 {
                    0 => HostSpec::server(i),
                    4 => HostSpec::accelerator(i),
                    _ if i % 2 == 0 => HostSpec::rpi8gb(i),
                    _ => HostSpec::rpi4gb(i),
                },
            })
            .collect()
    }

    /// Short label for tables and JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            FleetMix::Pi => "pi",
            FleetMix::Hetero => "hetero",
        }
    }
}

/// Static configuration of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Host inventory.
    pub specs: Vec<HostSpec>,
    /// Initial broker count (= number of LEIs).
    pub n_brokers: usize,
    /// RNG seed for everything inside the engine.
    pub seed: u64,
    /// Fraction of a broker's CPU consumed by the management stack itself.
    pub broker_base_overhead: f64,
    /// Additional broker CPU per managed worker (synchronisation, audits).
    pub broker_per_worker_overhead: f64,
    /// Seconds of unavailability charged to a node whose role changed
    /// (management-container start-up + state sync, §IV-H).
    pub node_shift_cost_s: f64,
    /// RAM (MB) consumed by the broker management software.
    pub broker_mgmt_ram_mb: f64,
    /// Workers one broker can manage at full efficiency. Beyond this span
    /// the LEI's workers run degraded — the "low broker count can cause
    /// bottlenecks and contentions" effect of §I.
    pub broker_span: usize,
}

impl SimConfig {
    /// The §IV-C testbed: 16 Pi boards, 4 LEIs.
    pub fn testbed(seed: u64) -> Self {
        Self {
            specs: HostSpec::testbed16(),
            n_brokers: 4,
            seed,
            broker_base_overhead: 0.08,
            broker_per_worker_overhead: 0.015,
            node_shift_cost_s: 20.0,
            broker_mgmt_ram_mb: 512.0,
            broker_span: 5,
        }
    }

    /// A smaller federation, handy for fast tests.
    pub fn small(n_hosts: usize, n_brokers: usize, seed: u64) -> Self {
        let specs = (0..n_hosts)
            .map(|i| {
                if i % 2 == 0 {
                    HostSpec::rpi8gb(i)
                } else {
                    HostSpec::rpi4gb(i)
                }
            })
            .collect();
        Self {
            specs,
            n_brokers,
            seed,
            broker_base_overhead: 0.08,
            broker_per_worker_overhead: 0.015,
            node_shift_cost_s: 20.0,
            broker_mgmt_ram_mb: 512.0,
            broker_span: 5,
        }
    }

    /// A federation of arbitrary size with the testbed's hardware mix
    /// (alternating 8 GB / 4 GB Pi boards) and overhead constants —
    /// `federation(16, 4, s)` is hardware-equivalent to [`SimConfig::testbed`]
    /// up to host ordering. This is the constructor the >16-host scenario
    /// sweeps (32/64/128 hosts) build on; every component downstream
    /// (topology, GON encoders, normalizer) is host-count-agnostic.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n_brokers ≤ n_hosts`.
    pub fn federation(n_hosts: usize, n_brokers: usize, seed: u64) -> Self {
        assert!(
            n_brokers > 0 && n_brokers <= n_hosts,
            "need 0 < n_brokers ({n_brokers}) ≤ n_hosts ({n_hosts})"
        );
        Self::small(n_hosts, n_brokers, seed)
    }

    /// A federation with an explicit hardware [`FleetMix`].
    /// `fleet(n, b, FleetMix::Pi, s)` equals `federation(n, b, s)` exactly
    /// (same specs, same overhead constants), so Pi scenarios keep their
    /// historical bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n_brokers ≤ n_hosts`.
    pub fn fleet(n_hosts: usize, n_brokers: usize, mix: FleetMix, seed: u64) -> Self {
        assert!(
            n_brokers > 0 && n_brokers <= n_hosts,
            "need 0 < n_brokers ({n_brokers}) ≤ n_hosts ({n_hosts})"
        );
        Self {
            specs: mix.specs(n_hosts),
            ..Self::small(n_hosts, n_brokers, seed)
        }
    }
}

/// Everything that happened in one interval, for policies and harnesses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Interval index (0-based).
    pub interval: usize,
    /// Energy consumed across the federation this interval, watt-hours.
    pub energy_wh: f64,
    /// Tasks that completed this interval: `(id, response_s, violated)`.
    pub completed: Vec<(TaskId, f64, bool)>,
    /// Number of tasks that arrived this interval.
    pub arrivals: usize,
    /// Hosts that were failed (unresponsive) during this interval.
    pub failed_hosts: Vec<HostId>,
    /// Brokers among the failed hosts.
    pub failed_brokers: Vec<HostId>,
    /// Tasks forcibly restarted because their host failed.
    pub restarted_tasks: usize,
    /// Seconds of stall inflicted on LEI members by broker failures.
    pub broker_stall_s: f64,
    /// The scheduling decision taken this interval.
    pub decision: SchedulingDecision,
}

/// Below this federation size sharded host stepping defaults to serial:
/// spawning workers costs more than the per-interval host work saves.
const SHARD_MIN_HOSTS: usize = 256;

/// Read-only inputs shared by every host's execution window in one
/// interval (phase 6 of [`Simulator::step`]). Each host's window is a
/// pure function of these, so hosts can be stepped on any worker.
struct HostStepCtx<'a> {
    tasks: &'a [Task],
    topology: &'a Topology,
    config: &'a SimConfig,
    per_host_tasks: &'a [Vec<usize>],
    queued_now: &'a [usize],
    fault_loads: &'a [FaultLoad],
    failed_now: &'a [bool],
    stalled_host: &'a [bool],
    shift_penalty_s: &'a [f64],
}

/// One host's staged execution-window results: everything the serial
/// loop would have mutated in place, applied in ascending host order by
/// the reduction so accumulation order matches the serial reference.
struct HostStepOutcome {
    state: HostState,
    /// `(task index, remaining_work, elapsed_s, completed)` for every
    /// resident task.
    task_updates: Vec<(usize, f64, f64, bool)>,
    /// `(id, response_s, violated)` in processor-sharing completion order.
    completed: Vec<(TaskId, f64, bool)>,
    /// Host was stalled by a broker failure without failing itself —
    /// contributes one interval of broker stall to the report.
    stalled_not_failed: bool,
}

/// One host's execution window: identical arithmetic, in identical
/// order, to the old serial loop body — task state is shadowed in local
/// vectors parallel to the sorted active list instead of mutated through
/// `&mut self`, which is what makes the function pure and shardable.
fn step_host(ctx: &HostStepCtx<'_>, h: usize) -> HostStepOutcome {
    let spec_h = &ctx.config.specs[h];
    let fl = ctx.fault_loads[h];
    let failed = ctx.failed_now[h];
    let is_broker = matches!(ctx.topology.role(h), NodeRole::Broker);
    let mgmt_cpu = if is_broker {
        // Admission/queue management grows with the backlog parked at
        // this broker — deep queues are the "processing bottleneck" of
        // §I that makes loaded brokers fragile.
        let queued = ctx.queued_now[h] as f64;
        ctx.config.broker_base_overhead
            + ctx.config.broker_per_worker_overhead * ctx.topology.workers_of(h).len() as f64
            + (0.012 * queued).min(0.25)
    } else {
        0.0
    };
    let mgmt_ram = if is_broker {
        ctx.config.broker_mgmt_ram_mb / spec_h.ram_mb
    } else {
        0.0
    };

    let task_idxs = &ctx.per_host_tasks[h];

    // RAM pressure from resident tasks.
    let resident_ram: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.ram_mb)
        .sum::<f64>()
        / spec_h.ram_mb;
    let ram_util = resident_ram + mgmt_ram + fl.ram;
    let ram = ram_util.min(1.0);
    let swap = (ram_util - 1.0).clamp(0.0, 1.0);

    // Disk / network pressure.
    let disk_demand: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.disk_mb)
        .sum::<f64>()
        / (spec_h.disk_bw * INTERVAL_SECONDS);
    let net_demand: f64 = task_idxs
        .iter()
        .map(|&i| ctx.tasks[i].spec.net_mb)
        .sum::<f64>()
        / (spec_h.net_bw * INTERVAL_SECONDS);
    let disk = (disk_demand + fl.disk).min(1.0);
    let net = (net_demand + fl.net).min(1.0);
    let io_wait = (0.5 * swap + 0.3 * disk + 0.2 * net).min(1.0);

    // Effective task time this interval after stalls/penalties.
    let shift_pen = ctx.shift_penalty_s[h];
    let mut usable_s: f64 = INTERVAL_SECONDS - shift_pen;
    if failed || ctx.stalled_host[h] {
        usable_s = 0.0;
    }
    usable_s = usable_s.max(0.0);
    let stall_s = INTERVAL_SECONDS - usable_s;
    let stalled_not_failed = ctx.stalled_host[h] && !failed;

    // Thrashing: swap pressure halves effective capacity (§I:
    // storage-mapped virtual memory over congested backhaul).
    let thrash = 1.0 / (1.0 + 2.0 * swap);
    // Broker-bottleneck contention (§I): a worker whose broker manages
    // more than `broker_span` peers runs degraded, waiting on
    // dispatch/synchronisation from the saturated broker.
    let span_eff = if is_broker {
        1.0
    } else {
        let siblings = ctx
            .topology
            .workers_of(ctx.topology.broker_of(h))
            .len()
            .max(1);
        (ctx.config.broker_span as f64 / siblings as f64).min(1.0)
    };
    let cap_frac = (1.0 - mgmt_cpu - fl.cpu).max(0.0);
    let capacity_per_s = spec_h.cpu_capacity * cap_frac * thrash * span_eff;

    // Exact processor sharing within the usable window: with k active
    // tasks each runs at capacity/k; process completions in order of
    // remaining work. Work/elapsed live in shadow vectors parallel to
    // `active`.
    let mut active: Vec<usize> = task_idxs.clone();
    active.sort_by(|&a, &b| {
        ctx.tasks[a]
            .remaining_work
            .partial_cmp(&ctx.tasks[b].remaining_work)
            .expect("work values are finite")
    });
    let mut rem: Vec<f64> = active
        .iter()
        .map(|&j| ctx.tasks[j].remaining_work)
        .collect();
    let mut elapsed: Vec<f64> = active.iter().map(|&j| ctx.tasks[j].elapsed_s).collect();
    let mut done = vec![false; active.len()];
    let mut completed = Vec::new();
    let mut time_left = usable_s;
    let mut work_done_total = 0.0;
    let mut i = 0;
    while i < active.len() && time_left > 0.0 && capacity_per_s > 0.0 {
        let k = (active.len() - i) as f64;
        let rate = capacity_per_s / k;
        let t_finish = rem[i] / rate;
        if t_finish <= time_left {
            // Head task completes inside the window.
            let elapsed_until_done = usable_s - time_left + t_finish;
            for r in &mut rem[i..] {
                *r -= rate * t_finish;
                work_done_total += rate * t_finish;
            }
            rem[i] = 0.0;
            done[i] = true;
            elapsed[i] += stall_s + elapsed_until_done;
            let task = &ctx.tasks[active[i]];
            let violated = elapsed[i] > task.spec.deadline_s;
            completed.push((task.id, elapsed[i], violated));
            time_left -= t_finish;
            i += 1;
        } else {
            for r in &mut rem[i..] {
                *r -= rate * time_left;
                work_done_total += rate * time_left;
            }
            time_left = 0.0;
        }
    }
    let time_left_after = time_left;
    // Survivors carry the whole interval in elapsed time. (Everything in
    // `active` was Running, so the serial loop's status guard always
    // held here.)
    for e in &mut elapsed[i..] {
        *e += INTERVAL_SECONDS;
    }

    // CPU utilisation: busy-time accounting. While any task is resident
    // the cores spin at their allocated fraction whether the cycles are
    // productive or lost to thrashing / broker-span contention —
    // inefficient topologies therefore *burn energy*, not just time.
    // `work_done_total` is kept for diagnostics.
    let busy_s = usable_s - time_left_after;
    let _ = work_done_total;
    let work_util = if INTERVAL_SECONDS > 0.0 {
        (busy_s / INTERVAL_SECONDS) * cap_frac
    } else {
        0.0
    };
    let mut cpu = (work_util + mgmt_cpu + fl.cpu).min(1.0);
    if failed {
        // An unresponsive node pins whichever resource the fault hit.
        cpu = cpu.max((fl.cpu > 0.0) as u8 as f64);
    }

    // Energy: linear power curve over the interval (reboot = idle-ish).
    // Workers with no resident tasks drop into standby (§V-C: the
    // "remaining hosts in standby mode to conserve energy").
    let standby = !is_broker && task_idxs.is_empty() && !failed && fl.cpu == 0.0;
    let util_for_power = if failed { 0.2 } else { cpu };
    let power_w = if standby {
        STANDBY_POWER_FRACTION * spec_h.power_idle_w
    } else {
        spec_h.power_at(util_for_power)
    };
    let energy_wh = power_w * INTERVAL_SECONDS / 3600.0;

    let task_updates = active
        .iter()
        .enumerate()
        .map(|(pos, &j)| (j, rem[pos], elapsed[pos], done[pos]))
        .collect();

    HostStepOutcome {
        state: HostState {
            cpu,
            ram,
            disk,
            net,
            swap,
            io_wait,
            energy_wh,
            active_tasks: task_idxs.len(),
            failed,
        },
        task_updates,
        completed,
        stalled_not_failed,
    }
}

/// The simulation engine. See the crate docs for the driver-loop shape.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    topology: Topology,
    states: Vec<HostState>,
    tasks: Vec<Task>,
    network: NetworkModel,
    rng: StdRng,
    interval: usize,
    next_task_id: TaskId,
    /// Indices (ascending) of tasks not yet retired to the archive: every
    /// Pending/Running task, plus last interval's completions (retirement
    /// is deferred one step so interval-end snapshots still see them).
    /// All per-interval work walks this list, never the full ledger.
    live: Vec<usize>,
    /// Task id → index into `tasks`, filled at admission. Ids are dense
    /// and sequential, so this doubles as the O(1) replacement for the
    /// old per-decision `position()` scan.
    id_index: Vec<usize>,
    /// Worker-count override for sharded host stepping (see
    /// [`Simulator::set_step_workers`]).
    step_workers: Option<usize>,
    pending_faults: Vec<FaultLoad>,
    /// Hosts down for the current interval (failure latched last interval).
    recovering: Vec<usize>,
    /// Per-host seconds of unavailability carried into the next interval
    /// from node-shift role changes.
    shift_penalty_s: Vec<f64>,
    /// Last interval's failed brokers (what the resilience policy reacts to).
    last_failed_brokers: Vec<HostId>,
    // Cumulative accounting.
    total_energy_wh: f64,
    completed_count: usize,
    violation_count: usize,
    response_times: Vec<f64>,
    total_restarts: usize,
}

impl Simulator {
    /// Builds a simulator with a balanced initial topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot produce a valid topology.
    pub fn new(config: SimConfig) -> Self {
        let n = config.specs.len();
        let topology = Topology::balanced(n, config.n_brokers)
            .expect("SimConfig must describe a valid federation");
        let network = NetworkModel::new(config.n_brokers, config.seed ^ 0x004E_4554);
        Self::with_topology(config, topology, network)
    }

    /// Builds a simulator with an explicit starting topology.
    pub fn with_topology(config: SimConfig, topology: Topology, network: NetworkModel) -> Self {
        let n = config.specs.len();
        assert_eq!(topology.len(), n, "topology size must match host count");
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            topology,
            states: vec![HostState::default(); n],
            tasks: Vec::new(),
            network,
            rng,
            interval: 0,
            next_task_id: 0,
            live: Vec::new(),
            id_index: Vec::new(),
            step_workers: None,
            pending_faults: vec![FaultLoad::default(); n],
            recovering: vec![0; n],
            shift_penalty_s: vec![0.0; n],
            last_failed_brokers: Vec::new(),
            total_energy_wh: 0.0,
            completed_count: 0,
            violation_count: 0,
            response_times: Vec::new(),
            total_restarts: 0,
        }
    }

    /// Current interval index (number of completed steps).
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Host inventory.
    pub fn specs(&self) -> &[HostSpec] {
        &self.config.specs
    }

    /// Latest per-host states (from the last completed interval).
    pub fn host_states(&self) -> &[HostState] {
        &self.states
    }

    /// Current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network / gateway model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// All tasks ever admitted (completed ones keep their final state).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The live view of the ledger: every Pending/Running task plus the
    /// completions of the last finished interval (retired at the start of
    /// the next step). Interval-rate consumers — snapshots, policies —
    /// should read this instead of [`Simulator::tasks`] so their cost
    /// stays O(live) rather than O(horizon).
    pub fn live_tasks(&self) -> Vec<&Task> {
        self.live.iter().map(|&i| &self.tasks[i]).collect()
    }

    /// Number of tasks in the live view.
    pub fn live_task_count(&self) -> usize {
        self.live.len()
    }

    /// Overrides how many workers shard the per-host execution phase.
    ///
    /// `None` (the default) auto-selects: serial below
    /// `SHARD_MIN_HOSTS` (= 256) hosts, `par::thread_count()` workers
    /// at or above that — the same auto-enable point the README's
    /// "Scaling" section documents. Results are bit-identical at every
    /// worker count — the
    /// sharded path stages per-host outcomes and applies them in
    /// ascending host order, reproducing the serial accumulation
    /// chains exactly — so this knob only trades wall-clock.
    pub fn set_step_workers(&mut self, workers: Option<usize>) {
        self.step_workers = workers;
    }

    /// Brokers that failed during the last completed interval — the input
    /// to the resilience policy's repair step.
    pub fn failed_brokers(&self) -> &[HostId] {
        &self.last_failed_brokers
    }

    /// Cumulative energy, watt-hours.
    pub fn total_energy_wh(&self) -> f64 {
        self.total_energy_wh
    }

    /// Cumulative completed-task count.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Cumulative SLO violations among completed tasks.
    pub fn violation_count(&self) -> usize {
        self.violation_count
    }

    /// SLO violation rate over completed tasks (0 when none completed).
    pub fn violation_rate(&self) -> f64 {
        if self.completed_count == 0 {
            0.0
        } else {
            self.violation_count as f64 / self.completed_count as f64
        }
    }

    /// Response times of all completed tasks, seconds.
    pub fn response_times(&self) -> &[f64] {
        &self.response_times
    }

    /// Mean response time, seconds (0 when nothing completed).
    pub fn mean_response_time(&self) -> f64 {
        metrics::mean(&self.response_times).unwrap_or(0.0)
    }

    /// Total forced task restarts caused by host failures.
    pub fn total_restarts(&self) -> usize {
        self.total_restarts
    }

    /// Queues fault pressure against `host` for the *next* step.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn inject_fault(&mut self, host: HostId, load: FaultLoad) {
        self.pending_faults[host].merge(load);
    }

    /// Installs a repaired topology (Algorithm 2 line 17). Role changes are
    /// charged the node-shift cost of §IV-H: every host whose role changed
    /// is unavailable for `node_shift_cost_s` at the start of the next
    /// interval, and orphan reassignment costs a smaller sync penalty.
    ///
    /// # Panics
    ///
    /// Panics if the new topology has a different host count or is invalid.
    pub fn set_topology(&mut self, new: Topology) {
        assert_eq!(new.len(), self.topology.len(), "host count must not change");
        new.validate()
            .expect("refusing to install an invalid topology");
        for h in 0..new.len() {
            let old_role = self.topology.role(h);
            let new_role = new.role(h);
            match (old_role, new_role) {
                (NodeRole::Broker, NodeRole::Worker { .. })
                | (NodeRole::Worker { .. }, NodeRole::Broker) => {
                    self.shift_penalty_s[h] += self.config.node_shift_cost_s;
                }
                (NodeRole::Worker { broker: a }, NodeRole::Worker { broker: b }) if a != b => {
                    // Refreshing the broker IP is cheap (§IV-H).
                    self.shift_penalty_s[h] += 2.0;
                }
                _ => {}
            }
        }
        self.topology = new;
    }

    /// Maps a gateway entry LEI index to the broker currently serving it.
    fn entry_broker(&self, lei: usize) -> Option<HostId> {
        let brokers = self.topology.brokers();
        let live: Vec<HostId> = brokers
            .iter()
            .copied()
            .filter(|&b| self.recovering[b] == 0)
            .collect();
        if live.is_empty() {
            brokers.first().copied()
        } else {
            Some(live[lei % live.len()])
        }
    }

    /// Runs one scheduling interval: admits `arrivals`, places pending
    /// tasks with `scheduler`, simulates execution, applies queued fault
    /// loads, detects failures, and returns the interval's report.
    pub fn step(
        &mut self,
        arrivals: Vec<TaskSpec>,
        scheduler: &mut dyn Scheduler,
    ) -> IntervalReport {
        let t = self.interval;
        let n = self.config.specs.len();

        // --- 0. Retire last interval's completions from the live index.
        // Retirement is deferred by one interval so that interval-end
        // observers (e.g. `SystemState::capture` over the live view) still
        // see tasks that completed within the interval just simulated.
        {
            let tasks = &self.tasks;
            self.live
                .retain(|&i| tasks[i].status != TaskStatus::Completed);
        }

        // Hosts recovering from last interval's failure come back.
        for h in 0..n {
            if self.recovering[h] > 0 {
                self.recovering[h] -= 1;
            }
        }

        // --- 1. Gateway mobility + task admission.
        self.network.step_mobility(t);
        let n_arrivals = arrivals.len();
        for spec in arrivals {
            let lei = self.network.sample_entry_lei(&mut self.rng);
            let Some(broker) = self.entry_broker(lei) else {
                continue;
            };
            let id = self.next_task_id;
            self.next_task_id += 1;
            let mut task = Task::new(id, spec, t, broker);
            // Gateway→broker hop latency charged immediately.
            task.elapsed_s += self.network.latency_s(lei, lei) + 0.010;
            debug_assert_eq!(id, self.id_index.len(), "task ids are dense");
            self.id_index.push(self.tasks.len());
            self.live.push(self.tasks.len());
            self.tasks.push(task);
        }

        // --- 2. Failure determination for THIS interval.
        // Compute provisional utilisation from current placement + queued
        // fault loads; saturated hosts are unresponsive this interval.
        // One O(live) pass groups running tasks by host and counts each
        // broker's pending backlog, so the per-host utilisation below is
        // O(resident) instead of a full-ledger rescan per host.
        let (running_by_host, queued_pending) = self.live_placement(n);
        let fault_loads =
            std::mem::replace(&mut self.pending_faults, vec![FaultLoad::default(); n]);
        let mut failed_now = vec![false; n];
        for h in 0..n {
            if self.recovering[h] > 0 {
                failed_now[h] = true;
                continue;
            }
            let organic = self.organic_utilisation(h, &running_by_host[h], queued_pending[h]);
            let fl = &fault_loads[h];
            if organic.0 + fl.cpu >= 0.999
                || organic.1 + fl.ram >= 0.999
                || organic.2 + fl.disk >= 0.999
                || organic.3 + fl.net >= 0.999
            {
                failed_now[h] = true;
                // Recovery takes 1–5 minutes (§IV-I): down for the rest of
                // this interval; live again next interval.
                self.recovering[h] = 1;
            }
        }

        // --- 3. Restart tasks stranded on failed workers (the paper's
        // worker-failure rule: rerun in the LEI; placement happens via the
        // scheduler below).
        let mut restarted = 0usize;
        for &idx in &self.live {
            let task = &mut self.tasks[idx];
            if task.status == TaskStatus::Running {
                if let Some(h) = task.host {
                    if failed_now[h] {
                        task.remaining_work = task.spec.cpu_work;
                        task.host = None;
                        task.status = TaskStatus::Pending;
                        task.restarts += 1;
                        restarted += 1;
                    }
                }
            }
        }
        self.total_restarts += restarted;

        // --- 4. Scheduling of pending tasks.
        let mut fail_view = self.states.clone();
        for h in 0..n {
            fail_view[h].failed = failed_now[h];
        }
        let live_view: Vec<&Task> = self.live.iter().map(|&i| &self.tasks[i]).collect();
        let decision =
            scheduler.schedule(&live_view, &self.topology, &self.config.specs, &fail_view);
        drop(live_view);
        for (task_id, host) in decision.iter() {
            if failed_now[host] {
                continue; // stale decision against a dying host: skip
            }
            let Some(&idx) = self.id_index.get(task_id) else {
                continue;
            };
            if self.tasks[idx].status != TaskStatus::Pending {
                continue;
            }
            // Broker→worker dispatch transfer.
            let from = self
                .topology
                .broker_of(self.tasks[idx].admitted_by.min(n - 1));
            let lei_a = self.lei_index_of(from);
            let lei_b = self.lei_index_of(host);
            let transfer = self.network.transfer_s(
                lei_a,
                lei_b,
                self.tasks[idx].spec.net_mb,
                self.config.specs[host].net_bw,
            );
            let task = &mut self.tasks[idx];
            task.status = TaskStatus::Running;
            task.host = Some(host);
            task.elapsed_s += transfer;
        }

        // --- 5. Broker-failure stalls: every member of a failed broker's
        // LEI makes no progress while the broker is down ("all active tasks
        // within the LEI and all incoming tasks ... are impacted", §I).
        let mut stalled_host = vec![false; n];
        let mut broker_stall_s = 0.0;
        for b in self.topology.brokers() {
            if failed_now[b] {
                for member in self.topology.lei(b) {
                    stalled_host[member] = true;
                }
            }
        }

        // --- 6. Execution with processor sharing per host. Scheduling
        // just moved tasks Pending→Running, so regroup the live set (the
        // pending backlog per broker changed too).
        let (per_host_tasks, queued_now) = self.live_placement(n);

        // Each host's execution window is a pure function of the pre-§6
        // ledger plus this interval's per-host inputs (a task is resident
        // on exactly one host), so hosts shard across `par` workers in
        // contiguous segments. All mutations are staged into per-host
        // outcomes and applied serially in ascending host order below,
        // reproducing the serial loop's f64 accumulation chains exactly —
        // bit-identical at any worker count.
        let shift_pen_all = std::mem::replace(&mut self.shift_penalty_s, vec![0.0; n]);
        let workers = match self.step_workers {
            Some(k) => k.max(1),
            None if n >= SHARD_MIN_HOSTS => par::thread_count(),
            None => 1,
        };
        let ctx = HostStepCtx {
            tasks: &self.tasks,
            topology: &self.topology,
            config: &self.config,
            per_host_tasks: &per_host_tasks,
            queued_now: &queued_now,
            fault_loads: &fault_loads,
            failed_now: &failed_now,
            stalled_host: &stalled_host,
            shift_penalty_s: &shift_pen_all,
        };
        let seg = n.div_ceil(workers).max(1);
        let segments: Vec<std::ops::Range<usize>> =
            (0..n).step_by(seg).map(|s| s..(s + seg).min(n)).collect();
        let outcomes: Vec<HostStepOutcome> = par::par_map_threads(workers, &segments, |range| {
            range
                .clone()
                .map(|h| step_host(&ctx, h))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // In-order reduction: ascending host order, like the serial loop.
        let mut completed: Vec<(TaskId, f64, bool)> = Vec::new();
        let mut new_states = Vec::with_capacity(n);
        for outcome in outcomes {
            if outcome.stalled_not_failed {
                broker_stall_s += INTERVAL_SECONDS;
            }
            for (idx, rem, elapsed, done) in outcome.task_updates {
                let task = &mut self.tasks[idx];
                task.remaining_work = rem;
                task.elapsed_s = elapsed;
                if done {
                    task.status = TaskStatus::Completed;
                }
            }
            completed.extend(outcome.completed);
            new_states.push(outcome.state);
        }

        // Pending tasks (unplaced, e.g. dead broker or outage) also wait.
        for &idx in &self.live {
            let task = &mut self.tasks[idx];
            if task.status == TaskStatus::Pending {
                task.elapsed_s += INTERVAL_SECONDS;
            }
        }

        // --- 7. Bookkeeping.
        let energy: f64 = new_states.iter().map(|s| s.energy_wh).sum();
        self.total_energy_wh += energy;
        for &(_, resp, violated) in &completed {
            self.completed_count += 1;
            self.response_times.push(resp);
            if violated {
                self.violation_count += 1;
            }
        }
        self.states = new_states;
        let failed_hosts: Vec<HostId> = (0..n).filter(|&h| failed_now[h]).collect();
        let failed_brokers: Vec<HostId> = self
            .topology
            .brokers()
            .into_iter()
            .filter(|&b| failed_now[b])
            .collect();
        self.last_failed_brokers = failed_brokers.clone();
        self.interval += 1;

        IntervalReport {
            interval: t,
            energy_wh: energy,
            completed,
            arrivals: n_arrivals,
            failed_hosts,
            failed_brokers,
            restarted_tasks: restarted,
            broker_stall_s,
            decision,
        }
    }

    /// One O(live) pass over the ledger: running-task indices grouped per
    /// host (ascending index order, matching the historical full-ledger
    /// scan) plus the pending backlog count per admitting broker.
    fn live_placement(&self, n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut running_by_host: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut queued_pending = vec![0usize; n];
        for &idx in &self.live {
            let task = &self.tasks[idx];
            match task.status {
                TaskStatus::Running => {
                    if let Some(h) = task.host {
                        running_by_host[h].push(idx);
                    }
                }
                TaskStatus::Pending => queued_pending[task.admitted_by] += 1,
                TaskStatus::Completed => {}
            }
        }
        (running_by_host, queued_pending)
    }

    /// Organic (task + management) utilisation of `h` before fault load,
    /// as `(cpu, ram, disk, net)`. Used for failure determination.
    /// `running` is `h`'s bucket from [`Simulator::live_placement`] and
    /// `queued` its pending backlog; summation order over `running` is the
    /// ledger order the historical per-host full scan used, so the f64
    /// chains are bit-identical.
    fn organic_utilisation(
        &self,
        h: HostId,
        running: &[usize],
        queued: usize,
    ) -> (f64, f64, f64, f64) {
        let spec = &self.config.specs[h];
        let is_broker = matches!(self.topology.role(h), NodeRole::Broker);
        let mgmt_cpu = if is_broker {
            let queued = queued as f64;
            self.config.broker_base_overhead
                + self.config.broker_per_worker_overhead * self.topology.workers_of(h).len() as f64
                + (0.012 * queued).min(0.25)
        } else {
            0.0
        };
        let mgmt_ram = if is_broker {
            self.config.broker_mgmt_ram_mb / spec.ram_mb
        } else {
            0.0
        };
        let mut cpu = mgmt_cpu;
        let mut ram = mgmt_ram;
        let mut disk = 0.0;
        let mut net = 0.0;
        let mut task_cpu = 0.0;
        for &i in running {
            let task = &self.tasks[i];
            // CPU demand share: the work a task would do this interval
            // at full speed, as a fraction of interval capacity.
            task_cpu += (task.remaining_work / (spec.cpu_capacity * INTERVAL_SECONDS)).min(1.0);
            ram += task.spec.ram_mb / spec.ram_mb;
            disk += task.spec.disk_mb / (spec.disk_bw * INTERVAL_SECONDS);
            net += task.spec.net_mb / (spec.net_bw * INTERVAL_SECONDS);
        }
        // Processor sharing degrades gracefully under pure CPU pressure —
        // task demand alone cannot render a host unresponsive (the kernel
        // still schedules the management plane). It contributes at most
        // 0.65, so byzantine failure needs fault injection or RAM/disk/
        // network exhaustion on top of organic load.
        cpu += task_cpu.min(0.65);
        (cpu, ram, disk, net)
    }

    /// LEI index of `host` for the network-latency model: position of its
    /// broker in the sorted broker list, folded into the modelled LEI count.
    fn lei_index_of(&self, host: HostId) -> usize {
        let broker = self.topology.broker_of(host);
        let brokers = self.topology.brokers();
        let pos = brokers.iter().position(|&b| b == broker).unwrap_or(0);
        pos % self.network.n_leis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::LeastLoadScheduler;

    fn quick_spec(work: f64) -> TaskSpec {
        TaskSpec {
            app: "test".into(),
            cpu_work: work,
            ram_mb: 256.0,
            disk_mb: 5.0,
            net_mb: 5.0,
            deadline_s: 400.0,
        }
    }

    fn sim() -> Simulator {
        Simulator::new(SimConfig::small(8, 2, 42))
    }

    #[test]
    fn federation_config_scales_to_128_hosts() {
        for (n_hosts, n_brokers) in [(32, 8), (64, 8), (128, 16)] {
            let mut s = Simulator::new(SimConfig::federation(n_hosts, n_brokers, 7));
            assert_eq!(s.specs().len(), n_hosts);
            assert_eq!(s.topology().brokers().len(), n_brokers);
            s.topology().validate().unwrap();
            let mut sched = LeastLoadScheduler::new();
            let arrivals: Vec<TaskSpec> = (0..n_hosts / 4).map(|_| quick_spec(50_000.0)).collect();
            let r = s.step(arrivals, &mut sched);
            assert!(r.energy_wh > 0.0);
            assert!(
                !r.completed.is_empty(),
                "{n_hosts}-host federation completed nothing"
            );
        }
    }

    #[test]
    fn federation_16_4_matches_testbed_hardware_envelope() {
        let fed = SimConfig::federation(16, 4, 0);
        let testbed = SimConfig::testbed(0);
        assert_eq!(fed.specs.len(), testbed.specs.len());
        assert_eq!(fed.n_brokers, testbed.n_brokers);
        let ram = |specs: &[HostSpec]| specs.iter().map(|s| s.ram_mb).sum::<f64>();
        assert_eq!(ram(&fed.specs), ram(&testbed.specs));
    }

    #[test]
    #[should_panic(expected = "n_brokers")]
    fn federation_rejects_zero_brokers() {
        SimConfig::federation(32, 0, 0);
    }

    #[test]
    fn pi_fleet_equals_federation_exactly() {
        let fleet = SimConfig::fleet(32, 8, FleetMix::Pi, 5);
        let fed = SimConfig::federation(32, 8, 5);
        assert_eq!(fleet.specs, fed.specs);
        assert_eq!(fleet.n_brokers, fed.n_brokers);
        assert_eq!(fleet.broker_span, fed.broker_span);
    }

    #[test]
    fn hetero_fleet_mixes_all_three_host_classes_and_runs() {
        let config = SimConfig::fleet(16, 4, FleetMix::Hetero, 3);
        let servers = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("server"))
            .count();
        let accels = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("accel"))
            .count();
        let pis = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("rpi"))
            .count();
        assert_eq!(
            (servers, accels, pis),
            (2, 2, 12),
            "one server + accel per 8-host rack"
        );
        let mut s = Simulator::new(config);
        let mut sched = LeastLoadScheduler::new();
        let arrivals: Vec<TaskSpec> = (0..8).map(|_| quick_spec(100_000.0)).collect();
        let r = s.step(arrivals, &mut sched);
        assert!(r.energy_wh > 0.0);
        // The server idles hotter than every Pi peaks, so a hetero fleet
        // must draw more idle energy than the same-size Pi fleet.
        let mut pi = Simulator::new(SimConfig::fleet(16, 4, FleetMix::Pi, 3));
        let r_pi = pi.step(Vec::new(), &mut sched);
        let mut hetero_idle = Simulator::new(SimConfig::fleet(16, 4, FleetMix::Hetero, 3));
        let r_het = hetero_idle.step(Vec::new(), &mut sched);
        assert!(r_het.energy_wh > r_pi.energy_wh);
    }

    #[test]
    fn empty_interval_consumes_idle_energy() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let r = s.step(Vec::new(), &mut sched);
        assert_eq!(r.completed.len(), 0);
        // Brokers idle at their management utilisation; task-less workers
        // drop to standby power.
        let expected: f64 = s
            .specs()
            .iter()
            .enumerate()
            .map(|(h, spec)| {
                let is_broker = matches!(s.topology().role(h), crate::topology::NodeRole::Broker);
                let watts = if is_broker {
                    spec.power_at(s.host_states()[h].cpu)
                } else {
                    STANDBY_POWER_FRACTION * spec.power_idle_w
                };
                watts * INTERVAL_SECONDS / 3600.0
            })
            .sum();
        assert!((r.energy_wh - expected).abs() < 1e-9);
        assert!(r.energy_wh > 0.0);
    }

    #[test]
    fn standby_workers_draw_less_than_idle_brokers() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(Vec::new(), &mut sched);
        let worker = s.topology().workers()[0];
        let broker = s.topology().brokers()[0];
        assert!(
            s.host_states()[worker].energy_wh < s.host_states()[broker].energy_wh,
            "standby worker must undercut a management-loaded broker"
        );
    }

    #[test]
    fn small_task_completes_in_first_interval() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let r = s.step(vec![quick_spec(4000.0)], &mut sched);
        assert_eq!(r.completed.len(), 1);
        let (_, resp, violated) = r.completed[0];
        assert!(resp > 0.0 && resp < 10.0, "resp={resp}");
        assert!(!violated);
        assert_eq!(s.completed_count(), 1);
        assert_eq!(s.violation_rate(), 0.0);
    }

    #[test]
    fn long_task_spans_intervals() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // 4000 units/s capacity × 300 s = 1.2M units/interval.
        let r = s.step(vec![quick_spec(1.8e6)], &mut sched);
        assert!(r.completed.is_empty());
        let r2 = s.step(Vec::new(), &mut sched);
        assert_eq!(r2.completed.len(), 1);
        let (_, resp, _) = r2.completed[0];
        assert!(resp > 300.0 && resp < 600.0, "resp={resp}");
    }

    #[test]
    fn processor_sharing_slows_concurrent_tasks() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // Two tasks on a 2-LEI/8-host system spread out; force same host by
        // saturating: send 8 tasks (more tasks than workers).
        let arrivals: Vec<TaskSpec> = (0..8).map(|_| quick_spec(600_000.0)).collect();
        let r = s.step(arrivals, &mut sched);
        // 600k work at 4000/s solo = 150 s — but some hosts got 2 tasks, so
        // their tasks ran slower than solo.
        assert!(!r.completed.is_empty());
        let max_resp = r
            .completed
            .iter()
            .map(|&(_, t, _)| t)
            .fold(0.0f64, f64::max);
        assert!(max_resp > 150.0, "sharing should slow someone: {max_resp}");
    }

    #[test]
    fn fault_load_saturates_and_fails_host() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_hosts.contains(&0));
        assert!(r.failed_brokers.contains(&0));
        assert_eq!(s.failed_brokers(), &[0]);
        // Host recovers next interval.
        let r2 = s.step(Vec::new(), &mut sched);
        assert!(!r2.failed_hosts.contains(&0));
    }

    #[test]
    fn broker_failure_stalls_its_lei() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // Start a long task in broker 0's LEI.
        let spec = TaskSpec {
            deadline_s: 10_000.0,
            ..quick_spec(2.0e6)
        };
        s.step(vec![spec.clone(), spec], &mut sched);
        let before: Vec<f64> = s.tasks().iter().map(|t| t.remaining_work).collect();
        // Fail broker 0.
        s.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_brokers.contains(&0));
        assert!(r.broker_stall_s > 0.0);
        // Tasks on broker 0's LEI made no progress.
        for (task, prev) in s.tasks().iter().zip(&before) {
            if let Some(h) = task.host {
                if s.topology().lei(0).contains(&h) && task.status == TaskStatus::Running {
                    assert_eq!(task.remaining_work, *prev, "stalled task progressed");
                }
            }
        }
    }

    #[test]
    fn worker_failure_restarts_tasks() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(vec![quick_spec(2.0e6)], &mut sched);
        let host = s
            .tasks()
            .iter()
            .find(|t| t.status == TaskStatus::Running)
            .and_then(|t| t.host)
            .expect("task should be running");
        s.inject_fault(
            host,
            FaultLoad {
                ram: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_hosts.contains(&host));
        assert_eq!(r.restarted_tasks, 1);
        assert_eq!(s.total_restarts(), 1);
    }

    #[test]
    fn node_shift_charges_penalty() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(Vec::new(), &mut sched);
        let mut topo = s.topology().clone();
        let w = topo.workers()[0];
        topo.promote(w).unwrap();
        s.set_topology(topo);
        assert!(s.shift_penalty_s[w] > 0.0);
        // The penalty drains on the next step.
        s.step(Vec::new(), &mut sched);
        assert_eq!(s.shift_penalty_s[w], 0.0);
    }

    #[test]
    fn tasks_are_never_lost() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let mut admitted = 0;
        for i in 0..20 {
            let arrivals: Vec<TaskSpec> = (0..(i % 3)).map(|_| quick_spec(500_000.0)).collect();
            admitted += arrivals.len();
            if i % 5 == 0 {
                s.inject_fault(
                    i % 8,
                    FaultLoad {
                        cpu: 1.0,
                        ..Default::default()
                    },
                );
            }
            s.step(arrivals, &mut sched);
        }
        assert_eq!(s.tasks().len(), admitted);
        let done = s
            .tasks()
            .iter()
            .filter(|t| t.status == TaskStatus::Completed)
            .count();
        assert_eq!(done, s.completed_count());
    }

    #[test]
    fn energy_increases_with_load() {
        let mut idle = sim();
        let mut busy = sim();
        let mut sched = LeastLoadScheduler::new();
        for _ in 0..5 {
            idle.step(Vec::new(), &mut sched);
            busy.step(vec![quick_spec(1.0e6); 4], &mut sched);
        }
        assert!(busy.total_energy_wh() > idle.total_energy_wh());
    }

    #[test]
    fn deadline_violation_recorded() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let spec = TaskSpec {
            deadline_s: 1.0, // impossible
            ..quick_spec(900_000.0)
        };
        let mut done = false;
        s.step(vec![spec], &mut sched);
        for _ in 0..5 {
            let r = s.step(Vec::new(), &mut sched);
            if !r.completed.is_empty() {
                assert!(r.completed[0].2, "must be violated");
                done = true;
                break;
            }
        }
        assert!(done || s.violation_count() > 0 || s.completed_count() == 0);
        assert!(s.violation_rate() > 0.0);
    }
}
