//! Interval-driven simulation engine.
//!
//! One [`Simulator::step`] models one five-minute scheduling interval
//! (§III-A): task arrival via the gateway model, placement by the
//! underlying scheduler, processor-shared execution with contention,
//! failure effects, and energy/QoS accounting. Resilience policies interact
//! with the engine exactly where Algorithm 2 does: they read
//! [`Simulator::failed_brokers`] after a step and install a repaired
//! topology with [`Simulator::set_topology`] before the next one.

use crate::host::{HostId, HostSpec, HostState};
use crate::network::NetworkModel;
use crate::phases::{self, PhaseTimings};
use crate::scheduler::{Scheduler, SchedulingDecision};
use crate::task::{Task, TaskId, TaskSpec, TaskStatus};
use crate::topology::{NodeRole, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Fraction of idle power drawn by a task-less worker in standby mode.
pub const STANDBY_POWER_FRACTION: f64 = 0.45;

/// Extra resource pressure applied to one host for one interval by the
/// fault-injection module (CPU hog, memory thrasher, IOZone, DDoS — §IV-F).
/// Values are utilisation fractions added on top of organic load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLoad {
    /// Added CPU utilisation.
    pub cpu: f64,
    /// Added RAM utilisation.
    pub ram: f64,
    /// Added disk-bandwidth utilisation.
    pub disk: f64,
    /// Added network-bandwidth utilisation.
    pub net: f64,
}

impl FaultLoad {
    /// Componentwise sum.
    pub fn merge(&mut self, other: FaultLoad) {
        self.cpu += other.cpu;
        self.ram += other.ram;
        self.disk += other.disk;
        self.net += other.net;
    }
}

/// Hardware composition of a federation: which [`HostSpec`] classes the
/// host table is built from. The historical constructors are all
/// [`FleetMix::Pi`]; [`FleetMix::Hetero`] mixes server-class and
/// accelerator nodes into the Pi fabric so scenarios can probe resilience
/// when capacity — and therefore placement pressure and blast radius — is
/// unevenly distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FleetMix {
    /// Alternating 8 GB / 4 GB Raspberry Pi boards (the testbed mix).
    #[default]
    Pi,
    /// Heterogeneous: every 8th host a server, every 8th (offset 4) an
    /// accelerator, Pis elsewhere — one server + one accelerator per
    /// 8-host rack, mirroring a small edge site with one beefy node and
    /// one GPU box per rack.
    Hetero,
}

impl FleetMix {
    /// Builds the host inventory for an `n_hosts` federation.
    pub fn specs(self, n_hosts: usize) -> Vec<HostSpec> {
        (0..n_hosts)
            .map(|i| match self {
                FleetMix::Pi => {
                    if i % 2 == 0 {
                        HostSpec::rpi8gb(i)
                    } else {
                        HostSpec::rpi4gb(i)
                    }
                }
                FleetMix::Hetero => match i % 8 {
                    0 => HostSpec::server(i),
                    4 => HostSpec::accelerator(i),
                    _ if i % 2 == 0 => HostSpec::rpi8gb(i),
                    _ => HostSpec::rpi4gb(i),
                },
            })
            .collect()
    }

    /// Short label for tables and JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            FleetMix::Pi => "pi",
            FleetMix::Hetero => "hetero",
        }
    }
}

/// Static configuration of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Host inventory.
    pub specs: Vec<HostSpec>,
    /// Initial broker count (= number of LEIs).
    pub n_brokers: usize,
    /// RNG seed for everything inside the engine.
    pub seed: u64,
    /// Fraction of a broker's CPU consumed by the management stack itself.
    pub broker_base_overhead: f64,
    /// Additional broker CPU per managed worker (synchronisation, audits).
    pub broker_per_worker_overhead: f64,
    /// Seconds of unavailability charged to a node whose role changed
    /// (management-container start-up + state sync, §IV-H).
    pub node_shift_cost_s: f64,
    /// RAM (MB) consumed by the broker management software.
    pub broker_mgmt_ram_mb: f64,
    /// Workers one broker can manage at full efficiency. Beyond this span
    /// the LEI's workers run degraded — the "low broker count can cause
    /// bottlenecks and contentions" effect of §I.
    pub broker_span: usize,
}

impl SimConfig {
    /// The §IV-C testbed: 16 Pi boards, 4 LEIs.
    pub fn testbed(seed: u64) -> Self {
        Self {
            specs: HostSpec::testbed16(),
            n_brokers: 4,
            seed,
            broker_base_overhead: 0.08,
            broker_per_worker_overhead: 0.015,
            node_shift_cost_s: 20.0,
            broker_mgmt_ram_mb: 512.0,
            broker_span: 5,
        }
    }

    /// A smaller federation, handy for fast tests.
    pub fn small(n_hosts: usize, n_brokers: usize, seed: u64) -> Self {
        let specs = (0..n_hosts)
            .map(|i| {
                if i % 2 == 0 {
                    HostSpec::rpi8gb(i)
                } else {
                    HostSpec::rpi4gb(i)
                }
            })
            .collect();
        Self {
            specs,
            n_brokers,
            seed,
            broker_base_overhead: 0.08,
            broker_per_worker_overhead: 0.015,
            node_shift_cost_s: 20.0,
            broker_mgmt_ram_mb: 512.0,
            broker_span: 5,
        }
    }

    /// A federation of arbitrary size with the testbed's hardware mix
    /// (alternating 8 GB / 4 GB Pi boards) and overhead constants —
    /// `federation(16, 4, s)` is hardware-equivalent to [`SimConfig::testbed`]
    /// up to host ordering. This is the constructor the >16-host scenario
    /// sweeps (32/64/128 hosts) build on; every component downstream
    /// (topology, GON encoders, normalizer) is host-count-agnostic.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n_brokers ≤ n_hosts`.
    pub fn federation(n_hosts: usize, n_brokers: usize, seed: u64) -> Self {
        assert!(
            n_brokers > 0 && n_brokers <= n_hosts,
            "need 0 < n_brokers ({n_brokers}) ≤ n_hosts ({n_hosts})"
        );
        Self::small(n_hosts, n_brokers, seed)
    }

    /// A federation with an explicit hardware [`FleetMix`].
    /// `fleet(n, b, FleetMix::Pi, s)` equals `federation(n, b, s)` exactly
    /// (same specs, same overhead constants), so Pi scenarios keep their
    /// historical bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n_brokers ≤ n_hosts`.
    pub fn fleet(n_hosts: usize, n_brokers: usize, mix: FleetMix, seed: u64) -> Self {
        assert!(
            n_brokers > 0 && n_brokers <= n_hosts,
            "need 0 < n_brokers ({n_brokers}) ≤ n_hosts ({n_hosts})"
        );
        Self {
            specs: mix.specs(n_hosts),
            ..Self::small(n_hosts, n_brokers, seed)
        }
    }
}

/// Everything that happened in one interval, for policies and harnesses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Interval index (0-based).
    pub interval: usize,
    /// Energy consumed across the federation this interval, watt-hours.
    pub energy_wh: f64,
    /// Tasks that completed this interval: `(id, response_s, violated)`.
    pub completed: Vec<(TaskId, f64, bool)>,
    /// Number of tasks that arrived this interval.
    pub arrivals: usize,
    /// Hosts that were failed (unresponsive) during this interval.
    pub failed_hosts: Vec<HostId>,
    /// Brokers among the failed hosts.
    pub failed_brokers: Vec<HostId>,
    /// Tasks forcibly restarted because their host failed.
    pub restarted_tasks: usize,
    /// Seconds of stall inflicted on LEI members by broker failures.
    pub broker_stall_s: f64,
    /// The scheduling decision taken this interval.
    pub decision: SchedulingDecision,
    /// Wall-clock spent in each pipeline stage of this step (measurement
    /// only — never feeds back into the simulation, and absent from
    /// pre-phase-pipeline artifacts, hence the serde default).
    #[serde(default)]
    pub phases: PhaseTimings,
}

/// The simulation engine. See the crate docs for the driver-loop shape.
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) topology: Topology,
    pub(crate) states: Vec<HostState>,
    pub(crate) tasks: Vec<Task>,
    pub(crate) network: NetworkModel,
    pub(crate) rng: StdRng,
    pub(crate) interval: usize,
    pub(crate) next_task_id: TaskId,
    /// Indices (ascending) of tasks not yet retired to the archive: every
    /// Pending/Running task, plus last interval's completions (retirement
    /// is deferred one step so interval-end snapshots still see them).
    /// All per-interval work walks this list, never the full ledger.
    pub(crate) live: Vec<usize>,
    /// Task id → index into `tasks`, filled at admission. Ids are dense
    /// and sequential, so this doubles as the O(1) replacement for the
    /// old per-decision `position()` scan.
    pub(crate) id_index: Vec<usize>,
    /// Worker-count override for sharded host stepping (see
    /// [`Simulator::set_step_workers`]).
    pub(crate) step_workers: Option<usize>,
    pub(crate) pending_faults: Vec<FaultLoad>,
    /// Hosts down for the current interval (failure latched last interval).
    pub(crate) recovering: Vec<usize>,
    /// Per-host seconds of unavailability carried into the next interval
    /// from node-shift role changes.
    pub(crate) shift_penalty_s: Vec<f64>,
    /// Last interval's failed brokers (what the resilience policy reacts to).
    pub(crate) last_failed_brokers: Vec<HostId>,
    // Cumulative accounting.
    pub(crate) total_energy_wh: f64,
    pub(crate) completed_count: usize,
    pub(crate) violation_count: usize,
    pub(crate) response_times: Vec<f64>,
    pub(crate) total_restarts: usize,
}

impl Simulator {
    /// Builds a simulator with a balanced initial topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot produce a valid topology.
    pub fn new(config: SimConfig) -> Self {
        let n = config.specs.len();
        let topology = Topology::balanced(n, config.n_brokers)
            .expect("SimConfig must describe a valid federation");
        let network = NetworkModel::new(config.n_brokers, config.seed ^ 0x004E_4554);
        Self::with_topology(config, topology, network)
    }

    /// Builds a simulator with an explicit starting topology.
    pub fn with_topology(config: SimConfig, topology: Topology, network: NetworkModel) -> Self {
        let n = config.specs.len();
        assert_eq!(topology.len(), n, "topology size must match host count");
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            topology,
            states: vec![HostState::default(); n],
            tasks: Vec::new(),
            network,
            rng,
            interval: 0,
            next_task_id: 0,
            live: Vec::new(),
            id_index: Vec::new(),
            step_workers: None,
            pending_faults: vec![FaultLoad::default(); n],
            recovering: vec![0; n],
            shift_penalty_s: vec![0.0; n],
            last_failed_brokers: Vec::new(),
            total_energy_wh: 0.0,
            completed_count: 0,
            violation_count: 0,
            response_times: Vec::new(),
            total_restarts: 0,
        }
    }

    /// Current interval index (number of completed steps).
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Host inventory.
    pub fn specs(&self) -> &[HostSpec] {
        &self.config.specs
    }

    /// Latest per-host states (from the last completed interval).
    pub fn host_states(&self) -> &[HostState] {
        &self.states
    }

    /// Current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network / gateway model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// All tasks ever admitted (completed ones keep their final state).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The live view of the ledger: every Pending/Running task plus the
    /// completions of the last finished interval (retired at the start of
    /// the next step). Interval-rate consumers — snapshots, policies —
    /// should read this instead of [`Simulator::tasks`] so their cost
    /// stays O(live) rather than O(horizon).
    pub fn live_tasks(&self) -> Vec<&Task> {
        self.live.iter().map(|&i| &self.tasks[i]).collect()
    }

    /// Number of tasks in the live view.
    pub fn live_task_count(&self) -> usize {
        self.live.len()
    }

    /// Overrides how many workers shard the parallel pipeline stages
    /// ([`crate::phases::determine_failures`], the per-arrival bookkeeping
    /// in [`crate::phases::admit`], and the per-host windows in
    /// [`crate::phases::execute`]).
    ///
    /// `None` (the default) auto-selects: serial below
    /// [`crate::phases::SHARD_MIN_HOSTS`] (= 256) hosts,
    /// `par::thread_count()` workers at or above that — the same
    /// auto-enable point the README's "Scaling" section documents.
    /// Results are bit-identical at every worker count — each sharded
    /// stage computes pure per-item outcomes over contiguous segments and
    /// applies them in a serial in-order reduction, reproducing the
    /// serial accumulation chains exactly — so this knob only trades
    /// wall-clock.
    pub fn set_step_workers(&mut self, workers: Option<usize>) {
        self.step_workers = workers;
    }

    /// Brokers that failed during the last completed interval — the input
    /// to the resilience policy's repair step.
    pub fn failed_brokers(&self) -> &[HostId] {
        &self.last_failed_brokers
    }

    /// Cumulative energy, watt-hours.
    pub fn total_energy_wh(&self) -> f64 {
        self.total_energy_wh
    }

    /// Cumulative completed-task count.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Cumulative SLO violations among completed tasks.
    pub fn violation_count(&self) -> usize {
        self.violation_count
    }

    /// SLO violation rate over completed tasks (0 when none completed).
    pub fn violation_rate(&self) -> f64 {
        if self.completed_count == 0 {
            0.0
        } else {
            self.violation_count as f64 / self.completed_count as f64
        }
    }

    /// Response times of all completed tasks, seconds.
    pub fn response_times(&self) -> &[f64] {
        &self.response_times
    }

    /// Mean response time, seconds (0 when nothing completed).
    pub fn mean_response_time(&self) -> f64 {
        metrics::mean(&self.response_times).unwrap_or(0.0)
    }

    /// Total forced task restarts caused by host failures.
    pub fn total_restarts(&self) -> usize {
        self.total_restarts
    }

    /// Queues fault pressure against `host` for the *next* step.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn inject_fault(&mut self, host: HostId, load: FaultLoad) {
        self.pending_faults[host].merge(load);
    }

    /// Installs a repaired topology (Algorithm 2 line 17). Role changes are
    /// charged the node-shift cost of §IV-H: every host whose role changed
    /// is unavailable for `node_shift_cost_s` at the start of the next
    /// interval, and orphan reassignment costs a smaller sync penalty.
    ///
    /// # Panics
    ///
    /// Panics if the new topology has a different host count or is invalid.
    pub fn set_topology(&mut self, new: Topology) {
        assert_eq!(new.len(), self.topology.len(), "host count must not change");
        new.validate()
            .expect("refusing to install an invalid topology");
        for h in 0..new.len() {
            let old_role = self.topology.role(h);
            let new_role = new.role(h);
            match (old_role, new_role) {
                (NodeRole::Broker, NodeRole::Worker { .. })
                | (NodeRole::Worker { .. }, NodeRole::Broker) => {
                    self.shift_penalty_s[h] += self.config.node_shift_cost_s;
                }
                (NodeRole::Worker { broker: a }, NodeRole::Worker { broker: b }) if a != b => {
                    // Refreshing the broker IP is cheap (§IV-H).
                    self.shift_penalty_s[h] += 2.0;
                }
                _ => {}
            }
        }
        self.topology = new;
    }

    /// Runs one scheduling interval — the phase pipeline facade.
    ///
    /// Composes the stages of [`crate::phases`] in their fixed order
    /// (retire → admit → determine_failures → restart → schedule_dispatch
    /// → execute → report), timing each stage into
    /// [`IntervalReport::phases`]. See the `phases` module docs for what
    /// each stage does and which ones shard across workers.
    pub fn step(
        &mut self,
        arrivals: Vec<TaskSpec>,
        scheduler: &mut dyn Scheduler,
    ) -> IntervalReport {
        let t0 = Instant::now();
        phases::retire(self);
        let t1 = Instant::now();
        let n_arrivals = phases::admit(self, arrivals);
        let t2 = Instant::now();
        let failures = phases::determine_failures(self);
        let t3 = Instant::now();
        let restarted = phases::restart_stranded(self, &failures);
        let t4 = Instant::now();
        let decision = phases::schedule_dispatch(self, scheduler, &failures);
        let t5 = Instant::now();
        let exec = phases::execute(self, &failures);
        let t6 = Instant::now();
        let mut report = phases::report(self, n_arrivals, restarted, decision, failures, exec);
        let t7 = Instant::now();
        report.phases = PhaseTimings {
            retire_s: (t1 - t0).as_secs_f64(),
            admit_s: (t2 - t1).as_secs_f64(),
            determine_failures_s: (t3 - t2).as_secs_f64(),
            restart_s: (t4 - t3).as_secs_f64(),
            schedule_dispatch_s: (t5 - t4).as_secs_f64(),
            execute_s: (t6 - t5).as_secs_f64(),
            report_s: (t7 - t6).as_secs_f64(),
        };
        report
    }

    /// One O(live) pass over the ledger: running-task indices grouped per
    /// host (ascending index order, matching the historical full-ledger
    /// scan) plus the pending backlog count per admitting broker.
    pub(crate) fn live_placement(&self, n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut running_by_host: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut queued_pending = vec![0usize; n];
        for &idx in &self.live {
            let task = &self.tasks[idx];
            match task.status {
                TaskStatus::Running => {
                    if let Some(h) = task.host {
                        running_by_host[h].push(idx);
                    }
                }
                TaskStatus::Pending => queued_pending[task.admitted_by] += 1,
                TaskStatus::Completed => {}
            }
        }
        (running_by_host, queued_pending)
    }

    /// LEI index of `host` for the network-latency model: position of its
    /// broker in the sorted broker list, folded into the modelled LEI count.
    pub(crate) fn lei_index_of(&self, host: HostId) -> usize {
        let broker = self.topology.broker_of(host);
        let brokers = self.topology.brokers();
        let pos = brokers.iter().position(|&b| b == broker).unwrap_or(0);
        pos % self.network.n_leis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::LeastLoadScheduler;
    use crate::INTERVAL_SECONDS;

    fn quick_spec(work: f64) -> TaskSpec {
        TaskSpec {
            app: "test".into(),
            cpu_work: work,
            ram_mb: 256.0,
            disk_mb: 5.0,
            net_mb: 5.0,
            deadline_s: 400.0,
        }
    }

    fn sim() -> Simulator {
        Simulator::new(SimConfig::small(8, 2, 42))
    }

    #[test]
    fn federation_config_scales_to_128_hosts() {
        for (n_hosts, n_brokers) in [(32, 8), (64, 8), (128, 16)] {
            let mut s = Simulator::new(SimConfig::federation(n_hosts, n_brokers, 7));
            assert_eq!(s.specs().len(), n_hosts);
            assert_eq!(s.topology().brokers().len(), n_brokers);
            s.topology().validate().unwrap();
            let mut sched = LeastLoadScheduler::new();
            let arrivals: Vec<TaskSpec> = (0..n_hosts / 4).map(|_| quick_spec(50_000.0)).collect();
            let r = s.step(arrivals, &mut sched);
            assert!(r.energy_wh > 0.0);
            assert!(
                !r.completed.is_empty(),
                "{n_hosts}-host federation completed nothing"
            );
        }
    }

    #[test]
    fn federation_16_4_matches_testbed_hardware_envelope() {
        let fed = SimConfig::federation(16, 4, 0);
        let testbed = SimConfig::testbed(0);
        assert_eq!(fed.specs.len(), testbed.specs.len());
        assert_eq!(fed.n_brokers, testbed.n_brokers);
        let ram = |specs: &[HostSpec]| specs.iter().map(|s| s.ram_mb).sum::<f64>();
        assert_eq!(ram(&fed.specs), ram(&testbed.specs));
    }

    #[test]
    #[should_panic(expected = "n_brokers")]
    fn federation_rejects_zero_brokers() {
        SimConfig::federation(32, 0, 0);
    }

    #[test]
    fn pi_fleet_equals_federation_exactly() {
        let fleet = SimConfig::fleet(32, 8, FleetMix::Pi, 5);
        let fed = SimConfig::federation(32, 8, 5);
        assert_eq!(fleet.specs, fed.specs);
        assert_eq!(fleet.n_brokers, fed.n_brokers);
        assert_eq!(fleet.broker_span, fed.broker_span);
    }

    #[test]
    fn hetero_fleet_mixes_all_three_host_classes_and_runs() {
        let config = SimConfig::fleet(16, 4, FleetMix::Hetero, 3);
        let servers = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("server"))
            .count();
        let accels = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("accel"))
            .count();
        let pis = config
            .specs
            .iter()
            .filter(|s| s.name.starts_with("rpi"))
            .count();
        assert_eq!(
            (servers, accels, pis),
            (2, 2, 12),
            "one server + accel per 8-host rack"
        );
        let mut s = Simulator::new(config);
        let mut sched = LeastLoadScheduler::new();
        let arrivals: Vec<TaskSpec> = (0..8).map(|_| quick_spec(100_000.0)).collect();
        let r = s.step(arrivals, &mut sched);
        assert!(r.energy_wh > 0.0);
        // The server idles hotter than every Pi peaks, so a hetero fleet
        // must draw more idle energy than the same-size Pi fleet.
        let mut pi = Simulator::new(SimConfig::fleet(16, 4, FleetMix::Pi, 3));
        let r_pi = pi.step(Vec::new(), &mut sched);
        let mut hetero_idle = Simulator::new(SimConfig::fleet(16, 4, FleetMix::Hetero, 3));
        let r_het = hetero_idle.step(Vec::new(), &mut sched);
        assert!(r_het.energy_wh > r_pi.energy_wh);
    }

    #[test]
    fn empty_interval_consumes_idle_energy() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let r = s.step(Vec::new(), &mut sched);
        assert_eq!(r.completed.len(), 0);
        // Brokers idle at their management utilisation; task-less workers
        // drop to standby power.
        let expected: f64 = s
            .specs()
            .iter()
            .enumerate()
            .map(|(h, spec)| {
                let is_broker = matches!(s.topology().role(h), crate::topology::NodeRole::Broker);
                let watts = if is_broker {
                    spec.power_at(s.host_states()[h].cpu)
                } else {
                    STANDBY_POWER_FRACTION * spec.power_idle_w
                };
                watts * INTERVAL_SECONDS / 3600.0
            })
            .sum();
        assert!((r.energy_wh - expected).abs() < 1e-9);
        assert!(r.energy_wh > 0.0);
    }

    #[test]
    fn standby_workers_draw_less_than_idle_brokers() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(Vec::new(), &mut sched);
        let worker = s.topology().workers()[0];
        let broker = s.topology().brokers()[0];
        assert!(
            s.host_states()[worker].energy_wh < s.host_states()[broker].energy_wh,
            "standby worker must undercut a management-loaded broker"
        );
    }

    #[test]
    fn small_task_completes_in_first_interval() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let r = s.step(vec![quick_spec(4000.0)], &mut sched);
        assert_eq!(r.completed.len(), 1);
        let (_, resp, violated) = r.completed[0];
        assert!(resp > 0.0 && resp < 10.0, "resp={resp}");
        assert!(!violated);
        assert_eq!(s.completed_count(), 1);
        assert_eq!(s.violation_rate(), 0.0);
    }

    #[test]
    fn long_task_spans_intervals() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // 4000 units/s capacity × 300 s = 1.2M units/interval.
        let r = s.step(vec![quick_spec(1.8e6)], &mut sched);
        assert!(r.completed.is_empty());
        let r2 = s.step(Vec::new(), &mut sched);
        assert_eq!(r2.completed.len(), 1);
        let (_, resp, _) = r2.completed[0];
        assert!(resp > 300.0 && resp < 600.0, "resp={resp}");
    }

    #[test]
    fn processor_sharing_slows_concurrent_tasks() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // Two tasks on a 2-LEI/8-host system spread out; force same host by
        // saturating: send 8 tasks (more tasks than workers).
        let arrivals: Vec<TaskSpec> = (0..8).map(|_| quick_spec(600_000.0)).collect();
        let r = s.step(arrivals, &mut sched);
        // 600k work at 4000/s solo = 150 s — but some hosts got 2 tasks, so
        // their tasks ran slower than solo.
        assert!(!r.completed.is_empty());
        let max_resp = r
            .completed
            .iter()
            .map(|&(_, t, _)| t)
            .fold(0.0f64, f64::max);
        assert!(max_resp > 150.0, "sharing should slow someone: {max_resp}");
    }

    #[test]
    fn fault_load_saturates_and_fails_host() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_hosts.contains(&0));
        assert!(r.failed_brokers.contains(&0));
        assert_eq!(s.failed_brokers(), &[0]);
        // Host recovers next interval.
        let r2 = s.step(Vec::new(), &mut sched);
        assert!(!r2.failed_hosts.contains(&0));
    }

    #[test]
    fn broker_failure_stalls_its_lei() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        // Start a long task in broker 0's LEI.
        let spec = TaskSpec {
            deadline_s: 10_000.0,
            ..quick_spec(2.0e6)
        };
        s.step(vec![spec.clone(), spec], &mut sched);
        let before: Vec<f64> = s.tasks().iter().map(|t| t.remaining_work).collect();
        // Fail broker 0.
        s.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_brokers.contains(&0));
        assert!(r.broker_stall_s > 0.0);
        // Tasks on broker 0's LEI made no progress.
        for (task, prev) in s.tasks().iter().zip(&before) {
            if let Some(h) = task.host {
                if s.topology().lei(0).contains(&h) && task.status == TaskStatus::Running {
                    assert_eq!(task.remaining_work, *prev, "stalled task progressed");
                }
            }
        }
    }

    #[test]
    fn worker_failure_restarts_tasks() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(vec![quick_spec(2.0e6)], &mut sched);
        let host = s
            .tasks()
            .iter()
            .find(|t| t.status == TaskStatus::Running)
            .and_then(|t| t.host)
            .expect("task should be running");
        s.inject_fault(
            host,
            FaultLoad {
                ram: 1.0,
                ..Default::default()
            },
        );
        let r = s.step(Vec::new(), &mut sched);
        assert!(r.failed_hosts.contains(&host));
        assert_eq!(r.restarted_tasks, 1);
        assert_eq!(s.total_restarts(), 1);
    }

    #[test]
    fn node_shift_charges_penalty() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        s.step(Vec::new(), &mut sched);
        let mut topo = s.topology().clone();
        let w = topo.workers()[0];
        topo.promote(w).unwrap();
        s.set_topology(topo);
        assert!(s.shift_penalty_s[w] > 0.0);
        // The penalty drains on the next step.
        s.step(Vec::new(), &mut sched);
        assert_eq!(s.shift_penalty_s[w], 0.0);
    }

    #[test]
    fn tasks_are_never_lost() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let mut admitted = 0;
        for i in 0..20 {
            let arrivals: Vec<TaskSpec> = (0..(i % 3)).map(|_| quick_spec(500_000.0)).collect();
            admitted += arrivals.len();
            if i % 5 == 0 {
                s.inject_fault(
                    i % 8,
                    FaultLoad {
                        cpu: 1.0,
                        ..Default::default()
                    },
                );
            }
            s.step(arrivals, &mut sched);
        }
        assert_eq!(s.tasks().len(), admitted);
        let done = s
            .tasks()
            .iter()
            .filter(|t| t.status == TaskStatus::Completed)
            .count();
        assert_eq!(done, s.completed_count());
    }

    #[test]
    fn energy_increases_with_load() {
        let mut idle = sim();
        let mut busy = sim();
        let mut sched = LeastLoadScheduler::new();
        for _ in 0..5 {
            idle.step(Vec::new(), &mut sched);
            busy.step(vec![quick_spec(1.0e6); 4], &mut sched);
        }
        assert!(busy.total_energy_wh() > idle.total_energy_wh());
    }

    #[test]
    fn deadline_violation_recorded() {
        let mut s = sim();
        let mut sched = LeastLoadScheduler::new();
        let spec = TaskSpec {
            deadline_s: 1.0, // impossible
            ..quick_spec(900_000.0)
        };
        let mut done = false;
        s.step(vec![spec], &mut sched);
        for _ in 0..5 {
            let r = s.step(Vec::new(), &mut sched);
            if !r.completed.is_empty() {
                assert!(r.completed[0].2, "must be violated");
                done = true;
                break;
            }
        }
        assert!(done || s.violation_count() > 0 || s.completed_count() == 0);
        assert!(s.violation_rate() > 0.0);
    }
}
