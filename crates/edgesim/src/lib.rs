//! Discrete-interval simulator of a federated edge cluster.
//!
//! The paper evaluates CAROL on a physical testbed: 16 Raspberry Pi 4B
//! nodes (8×4 GB + 8×8 GB) arranged into 4 local edge infrastructures
//! (LEIs), each with one broker and three workers, running Docker
//! containers under 5-minute scheduling intervals (§IV-C). That hardware is
//! not available to this reproduction, so this crate implements the closest
//! simulated equivalent that exercises the same code paths:
//!
//! * heterogeneous [`HostSpec`]s with the published Pi 4B capacity, memory
//!   and power characteristics ([`host`]),
//! * a broker–worker [`Topology`] with full broker mesh and per-LEI worker
//!   assignment ([`topology`]),
//! * a bag-of-tasks lifecycle — arrival, placement, capacity-shared
//!   execution, completion — with energy, response-time and SLO accounting
//!   ([`sim`], [`task`]),
//! * the underlying GOBI-style least-estimated-interference scheduler the
//!   paper layers CAROL on top of ([`scheduler`]),
//! * a WAN/LAN latency model with gateway mobility shifting load across
//!   LEIs over time, which is what makes the workload non-stationary
//!   ([`network`]).
//!
//! Resilience policies (CAROL and the baselines) plug in from outside: the
//! simulator exposes which brokers failed during an interval and accepts a
//! repaired [`Topology`] before the next interval begins, mirroring
//! Algorithm 2's structure.

#![warn(missing_docs)]

pub mod host;
pub mod network;
pub mod phases;
pub mod scheduler;
pub mod sim;
pub mod state;
pub mod task;
pub mod topology;

pub use host::{HostId, HostSpec, HostState};
pub use network::{NetworkModel, GATEWAY_BROKER_HOP_S};
pub use phases::{PhaseTimings, SHARD_MIN_HOSTS};
pub use scheduler::{Scheduler, SchedulingDecision};
pub use sim::{FaultLoad, FleetMix, IntervalReport, SimConfig, Simulator};
pub use state::SystemState;
pub use task::{Task, TaskId, TaskSpec, TaskStatus};
pub use topology::{NodeRole, Topology, TopologyError};

/// Duration of one scheduling interval in seconds (five minutes, §IV-D).
pub const INTERVAL_SECONDS: f64 = 300.0;
