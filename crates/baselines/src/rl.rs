//! LBOS \[18\]: reinforcement-learning load balancing and optimisation.
//!
//! LBOS "allocates the resources using RL", computing the agent's reward
//! as a weighted average of QoS metrics whose weights come from a genetic
//! algorithm, while a weighted-round-robin assignment loop spreads
//! requests. The reproduction keeps all three published ingredients — a
//! Q-table over discretised LEI-load states, the GA that re-derives reward
//! weights at decision time (which is what makes LBOS one of the slowest
//! deciders in Fig. 5d), and per-interval Q-updates — while delegating
//! broker replacement to the Q-chosen orphan.

use crate::promote_orphan_repair;
use carol::policy::{ObserveOutcome, ResiliencePolicy};
use edgesim::state::SystemState;
use edgesim::{HostId, IntervalReport, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Discretised state: per-LEI load bucket (0..=3) of the failed broker's
/// LEI plus global pressure bucket.
type QState = (u8, u8);
/// Action: which orphan rank (by load) to promote, 0..ACTIONS.
const ACTIONS: usize = 3;

/// The LBOS policy.
#[derive(Debug)]
pub struct Lbos {
    q_table: HashMap<QState, [f64; ACTIONS]>,
    rng: StdRng,
    epsilon: f64,
    alpha: f64,
    gamma: f64,
    /// Reward weights (energy, response, slo) from the GA.
    reward_weights: [f64; 3],
    last_state_action: Option<(QState, usize)>,
    q_updates: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl Lbos {
    /// Creates the agent with the paper's default exploration settings.
    pub fn new(seed: u64) -> Self {
        Self {
            q_table: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            epsilon: 0.15,
            alpha: 0.3,
            gamma: 0.9,
            reward_weights: [1.0 / 3.0; 3],
            last_state_action: None,
            q_updates: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    /// Number of Q-learning updates applied so far.
    pub fn q_update_count(&self) -> usize {
        self.q_updates
    }

    fn bucket(x: f64) -> u8 {
        (x.clamp(0.0, 1.0) * 4.0).min(3.0) as u8
    }

    fn q_state(sim: &Simulator, lei_broker: HostId) -> QState {
        let lei = sim.topology().lei(lei_broker);
        let lei_load = lei
            .iter()
            .map(|&h| sim.host_states()[h].load_score())
            .sum::<f64>()
            / lei.len().max(1) as f64;
        let global = sim
            .host_states()
            .iter()
            .map(|s| s.load_score())
            .sum::<f64>()
            / sim.host_states().len().max(1) as f64;
        (Self::bucket(lei_load), Self::bucket(global))
    }

    /// The published GA step: evolve the three reward weights against the
    /// latest observed QoS so the reward tracks operator priorities. A
    /// small population evolved for a few generations per decision — this
    /// is deliberate compute at decision time (LBOS's published design),
    /// reflected in its decision-time measurements.
    fn evolve_weights(&mut self, energy: f64, response: f64, slo: f64) {
        const POP: usize = 16;
        const GENS: usize = 12;
        let fitness = |w: &[f64; 3]| {
            // Prefer weight vectors that emphasise the worst-performing
            // metric (normalised objectives: bigger = worse).
            -(w[0] * energy + w[1] * response + w[2] * slo
                - 0.1 * ((w[0] - w[1]).abs() + (w[1] - w[2]).abs()))
        };
        let mut pop: Vec<[f64; 3]> = (0..POP)
            .map(|_| {
                let mut w = [
                    self.rng.gen_range(0.0..1.0f64),
                    self.rng.gen_range(0.0..1.0f64),
                    self.rng.gen_range(0.0..1.0f64),
                ];
                let s: f64 = w.iter().sum();
                w.iter_mut().for_each(|x| *x /= s.max(1e-9));
                w
            })
            .collect();
        for _ in 0..GENS {
            pop.sort_by(|a, b| fitness(b).partial_cmp(&fitness(a)).expect("finite"));
            let elite = pop[..POP / 2].to_vec();
            for (i, slot) in pop.iter_mut().enumerate().skip(POP / 2) {
                let a = &elite[i % elite.len()];
                let b = &elite[(i + 1) % elite.len()];
                let mut child = [0.0; 3];
                for k in 0..3 {
                    child[k] = 0.5 * (a[k] + b[k]) + self.rng.gen_range(-0.05..0.05);
                    child[k] = child[k].max(0.0);
                }
                let s: f64 = child.iter().sum();
                child.iter_mut().for_each(|x| *x /= s.max(1e-9));
                *slot = child;
            }
        }
        pop.sort_by(|a, b| fitness(b).partial_cmp(&fitness(a)).expect("finite"));
        self.reward_weights = pop[0];
    }

    fn choose_action(&mut self, state: QState) -> usize {
        if self.rng.gen_range(0.0..1.0f64) < self.epsilon {
            return self.rng.gen_range(0..ACTIONS);
        }
        let row = self.q_table.entry(state).or_insert([0.0; ACTIONS]);
        row.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl ResiliencePolicy for Lbos {
    fn name(&self) -> &str {
        "LBOS"
    }

    fn repair(&mut self, sim: &Simulator, snapshot: &SystemState) -> Option<Topology> {
        let failed = sim.failed_brokers().to_vec();
        if failed.is_empty() {
            return None;
        }
        // GA re-derives reward weights + weighted-round-robin planning:
        // the published decision pipeline the paper measures as the
        // slowest of all methods (Fig. 5d).
        self.modeled_decision_s += 3.6;
        let (qe, qs) = snapshot.qos_components();
        let n = snapshot.n_hosts().max(1) as f64;
        self.evolve_weights(qe / n, 0.5, qs / n);

        let q_state = Self::q_state(sim, failed[0]);
        let action = self.choose_action(q_state);
        self.last_state_action = Some((q_state, action));

        // Action = rank of the orphan (sorted by ascending load) promoted.
        promote_orphan_repair(
            sim.topology(),
            &failed,
            sim.host_states(),
            |orphans, states| {
                let mut sorted: Vec<HostId> = orphans.to_vec();
                sorted.sort_by(|&a, &b| {
                    states[a]
                        .load_score()
                        .partial_cmp(&states[b].load_score())
                        .expect("finite")
                });
                sorted
                    .get(action.min(sorted.len().saturating_sub(1)))
                    .copied()
            },
        )
    }

    fn observe(
        &mut self,
        sim: &Simulator,
        snapshot: &SystemState,
        report: &IntervalReport,
    ) -> ObserveOutcome {
        // Reward: negative weighted QoS (smaller objective = more reward).
        let (qe, qs) = snapshot.qos_components();
        let n = snapshot.n_hosts().max(1) as f64;
        let resp_norm = (report.broker_stall_s / 300.0).min(1.0);
        let reward = -(self.reward_weights[0] * qe / n
            + self.reward_weights[1] * resp_norm
            + self.reward_weights[2] * qs / n);

        if let Some((state, action)) = self.last_state_action.take() {
            let brokers = sim.topology().brokers();
            let next_state = Self::q_state(sim, brokers.first().copied().unwrap_or(0));
            let next_best = self
                .q_table
                .get(&next_state)
                .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                .unwrap_or(0.0);
            let row = self.q_table.entry(state).or_insert([0.0; ACTIONS]);
            let old = row[action];
            row[action] = old + self.alpha * (reward + self.gamma * next_best - old);
            self.q_updates += 1;
        } else {
            // Q-learning still refreshes its statistics every interval.
            self.q_updates += 1;
        }
        self.modeled_overhead_s += 1.7;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        0.3 // Q-table + GA population: lowest of the AI baselines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::scheduler::LeastLoadScheduler;
    use edgesim::state::Normalizer;
    use edgesim::{FaultLoad, SimConfig};

    fn capture(sim: &Simulator) -> SystemState {
        SystemState::capture(
            sim.topology(),
            sim.specs(),
            sim.host_states(),
            sim.tasks(),
            &edgesim::SchedulingDecision::new(),
            &Normalizer::default(),
        )
    }

    #[test]
    fn repairs_failed_broker_via_q_action() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 1));
        let mut sched = LeastLoadScheduler::new();
        sim.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);
        let mut policy = Lbos::new(3);
        let topo = policy.repair(&sim, &snapshot).expect("repair");
        topo.validate().unwrap();
        assert!(matches!(topo.role(0), edgesim::NodeRole::Worker { .. }));
    }

    #[test]
    fn q_table_grows_with_experience() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 2));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = Lbos::new(5);
        for t in 0..10 {
            if t % 3 == 0 {
                sim.inject_fault(
                    t % 2,
                    FaultLoad {
                        cpu: 1.0,
                        ..Default::default()
                    },
                );
            }
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            if let Some(topo) = policy.repair(&sim, &snapshot) {
                sim.set_topology(topo);
            }
            policy.observe(&sim, &snapshot, &report);
        }
        assert!(policy.q_update_count() >= 10);
        assert!(!policy.q_table.is_empty());
    }

    #[test]
    fn ga_weights_stay_a_distribution() {
        let mut policy = Lbos::new(7);
        policy.evolve_weights(0.4, 0.2, 0.6);
        let sum: f64 = policy.reward_weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "weights={:?}",
            policy.reward_weights
        );
        assert!(policy.reward_weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn bucketing_is_bounded() {
        assert_eq!(Lbos::bucket(-1.0), 0);
        assert_eq!(Lbos::bucket(0.0), 0);
        assert_eq!(Lbos::bucket(0.99), 3);
        assert_eq!(Lbos::bucket(5.0), 3);
    }
}
