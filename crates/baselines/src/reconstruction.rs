//! Reconstruction-based baselines: TopoMAD \[21\] and StepGAN \[22\].
//!
//! Both are *fault-detection* methods: they reconstruct the system state
//! and use the reconstruction error as an anomaly signal. As §V notes,
//! "TopoMAD and StepGAN are only fault-detection methods, we supplement
//! them with the priority based load-balancing policy from the next best
//! baseline, i.e., FRAS" — so both delegate topology repair to a FRAS-like
//! least-predicted-QoS candidate choice and spend their own budget on
//! reconstruction training.

use crate::surrogate::Fras;
use carol::policy::{ObserveOutcome, ResiliencePolicy};
use edgesim::state::{SystemState, METRIC_DIM};
use edgesim::{IntervalReport, Simulator, Topology};
use gon::surrogates::GanSurrogate;
use nn::init::Initializer;
use nn::layer::{Activation, Dense, Layer, Sequential};
use nn::{Adam, Matrix};

/// Per-host metric window flattened for the reconstruction models.
fn metric_row(state: &SystemState) -> Matrix {
    let n = state.n_hosts().max(1) as f64;
    let mut pooled = vec![0.0; METRIC_DIM];
    for h in 0..state.n_hosts() {
        for (i, v) in state.metrics[h].iter().enumerate() {
            pooled[i] += v / n;
        }
    }
    Matrix::row_vector(&pooled)
}

/// TopoMAD \[21\]: topology-aware anomaly detection with an LSTM + VAE.
///
/// The reproduction models the reconstruction pathway with a recurrent
/// encoder feeding a bottlenecked autoencoder: reconstruction error over
/// the pooled metric vector is the anomaly score. Only the *latest* state
/// is reconstructible, which restricts TopoMAD to reactive recovery — the
/// limitation §II calls out.
pub struct TopoMad {
    encoder: Sequential,
    decoder: Sequential,
    /// Recurrent context (the "LSTM" state at the granularity this
    /// comparison needs: one hidden vector advanced per interval).
    context: Matrix,
    ctx_map: Dense,
    adam: Adam,
    repair_policy: Fras,
    /// Reconstruction-error history (anomaly scores).
    pub errors: Vec<f64>,
    fine_tunes: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl std::fmt::Debug for TopoMad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TopoMad(errors={})", self.errors.len())
    }
}

impl TopoMad {
    /// Builds the detector + FRAS repair policy.
    pub fn new(seed: u64) -> Self {
        let hidden = 32;
        let latent = 8;
        let mut init = Initializer::new(seed);
        let mut encoder = Sequential::new();
        encoder.push(Dense::new(METRIC_DIM + hidden, hidden, &mut init));
        encoder.push(Activation::tanh());
        encoder.push(Dense::new(hidden, latent, &mut init));
        let mut decoder = Sequential::new();
        decoder.push(Dense::new(latent, hidden, &mut init));
        decoder.push(Activation::tanh());
        decoder.push(Dense::new(hidden, METRIC_DIM, &mut init));
        decoder.push(Activation::sigmoid());
        Self {
            encoder,
            decoder,
            context: Matrix::zeros(1, hidden),
            ctx_map: Dense::new(hidden, hidden, &mut init),
            adam: Adam::new(1e-3, 1e-5),
            repair_policy: Fras::new(seed ^ 0x544D),
            errors: Vec::new(),
            fine_tunes: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    /// Reconstruction error of the current state (the anomaly score).
    pub fn reconstruction_error(&mut self, state: &SystemState) -> f64 {
        let x = metric_row(state);
        let ctx = self.ctx_map.forward(&self.context.clone()).map(f64::tanh);
        let z = self.encoder.forward(&x.hcat(&ctx));
        let xhat = self.decoder.forward(&z);
        nn::loss::mse(&xhat, &x)
    }
}

impl ResiliencePolicy for TopoMad {
    fn name(&self) -> &str {
        "TopoMAD"
    }

    fn repair(&mut self, sim: &Simulator, snapshot: &SystemState) -> Option<Topology> {
        let before = self.repair_policy.modeled_decision_s();
        let repaired = self.repair_policy.repair(sim, snapshot);
        // Detector inference (LSTM+VAE window scoring) + FRAS's policy.
        let delegated = self.repair_policy.modeled_decision_s() - before;
        if !sim.failed_brokers().is_empty() {
            self.modeled_decision_s += delegated + 0.3;
        }
        repaired
    }

    fn observe(
        &mut self,
        _sim: &Simulator,
        snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        self.modeled_overhead_s += 1.6;
        let x = metric_row(snapshot);
        let ctx = self.ctx_map.forward(&self.context.clone()).map(f64::tanh);
        let z = self.encoder.forward(&x.hcat(&ctx));
        let xhat = self.decoder.forward(&z);
        let err = nn::loss::mse(&xhat, &x);
        self.errors.push(err);

        // One reconstruction-training step per interval (reactive models
        // retrain continuously; §II).
        let grad = nn::loss::mse_grad(&xhat, &x);
        self.encoder.zero_grad();
        self.decoder.zero_grad();
        let g_latent = self.decoder.backward(&grad);
        self.encoder.backward(&g_latent);
        let mut params = self.encoder.params_mut();
        params.extend(self.decoder.params_mut());
        self.adam.step(params);

        // Advance the recurrent context with the fresh observation.
        self.context = ctx;
        self.fine_tunes += 1;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        2.0 // LSTM + VAE stack
    }
}

/// StepGAN \[22\]: stepwise-GAN anomaly detection over metric matrices.
///
/// The reproduction reuses the GAN substrate: the discriminator score over
/// the current state is the (inverse) anomaly signal, and the stepwise
/// training process advances one adversarial round per interval. Repair is
/// delegated to the FRAS policy per §V.
pub struct StepGan {
    gan: GanSurrogate,
    repair_policy: Fras,
    step: u64,
    /// Discriminator scores per interval (higher = more normal).
    pub scores: Vec<f64>,
    fine_tunes: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl std::fmt::Debug for StepGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StepGan(steps={})", self.step)
    }
}

impl StepGan {
    /// Builds the detector + FRAS repair policy.
    pub fn new(seed: u64) -> Self {
        Self {
            gan: GanSurrogate::new(48, 16, seed ^ 0x5347),
            repair_policy: Fras::new(seed ^ 0x0053_4702),
            step: 0,
            scores: Vec::new(),
            fine_tunes: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    /// Normality score of a state (discriminator output).
    pub fn score(&mut self, state: &SystemState) -> f64 {
        self.gan.score(state)
    }
}

impl ResiliencePolicy for StepGan {
    fn name(&self) -> &str {
        "StepGAN"
    }

    fn repair(&mut self, sim: &Simulator, snapshot: &SystemState) -> Option<Topology> {
        let before = self.repair_policy.modeled_decision_s();
        let repaired = self.repair_policy.repair(sim, snapshot);
        let delegated = self.repair_policy.modeled_decision_s() - before;
        if !sim.failed_brokers().is_empty() {
            // Matrix conversion + convolutional discriminator pass.
            self.modeled_decision_s += delegated + 0.4;
        }
        repaired
    }

    fn observe(
        &mut self,
        _sim: &Simulator,
        snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        self.modeled_overhead_s += 1.8;
        self.scores.push(self.gan.score(snapshot));
        // Stepwise training: one adversarial round per interval.
        self.gan.train_step(snapshot, self.step);
        self.step += 1;
        self.fine_tunes += 1;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        2.5 // generator + discriminator + conv-style buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::scheduler::LeastLoadScheduler;
    use edgesim::state::Normalizer;
    use edgesim::{FaultLoad, SimConfig};

    fn capture(sim: &Simulator) -> SystemState {
        SystemState::capture(
            sim.topology(),
            sim.specs(),
            sim.host_states(),
            sim.tasks(),
            &edgesim::SchedulingDecision::new(),
            &Normalizer::default(),
        )
    }

    #[test]
    fn topomad_reconstruction_error_falls_with_training() {
        let mut sim = Simulator::new(SimConfig::small(6, 2, 1));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = TopoMad::new(1);
        for _ in 0..60 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            policy.observe(&sim, &snapshot, &report);
        }
        let early: f64 = policy.errors[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = policy.errors[policy.errors.len() - 10..]
            .iter()
            .sum::<f64>()
            / 10.0;
        assert!(
            late < early,
            "reconstruction should improve: {early} → {late}"
        );
    }

    #[test]
    fn both_repair_through_the_fras_policy() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 2));
        let mut sched = LeastLoadScheduler::new();
        sim.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);

        let mut tm = TopoMad::new(2);
        let t = tm.repair(&sim, &snapshot).expect("TopoMAD repairs");
        t.validate().unwrap();

        let mut sg = StepGan::new(2);
        let t = sg.repair(&sim, &snapshot).expect("StepGAN repairs");
        t.validate().unwrap();
    }

    #[test]
    fn stepgan_scores_accumulate_per_interval() {
        let mut sim = Simulator::new(SimConfig::small(6, 2, 3));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = StepGan::new(3);
        for _ in 0..5 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            policy.observe(&sim, &snapshot, &report);
        }
        assert_eq!(policy.scores.len(), 5);
        assert!(policy.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn memory_ordering_matches_figure_5e() {
        // TopoMAD and StepGAN sit between FRAS and ELBS.
        let fras = crate::surrogate::Fras::new(0).memory_gb();
        let tm = TopoMad::new(0).memory_gb();
        let sg = StepGan::new(0).memory_gb();
        let elbs = crate::surrogate::Elbs::new(0).memory_gb();
        assert!(fras < tm && tm < sg && sg < elbs);
    }
}
