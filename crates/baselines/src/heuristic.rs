//! Heuristic and meta-heuristic baselines: DYVERSE \[13\] and ECLB \[17\].

use crate::{least_cpu, promote_orphan_repair};
use carol::policy::{ObserveOutcome, ResiliencePolicy};
use edgesim::state::SystemState;
use edgesim::{HostId, IntervalReport, Simulator, Topology};

/// DYVERSE \[13\]: dynamic vertical scaling in multi-tenant edge systems.
///
/// Priority scores are an ensemble of three heuristics — system-aware,
/// community-aware and workload-aware — recomputed every interval. For
/// broker failures DYVERSE "allocates the worker with the least CPU
/// utilization as the next broker of the same LEI".
#[derive(Debug, Default)]
pub struct Dyverse {
    /// Latest per-host priority scores (re-ranked every interval).
    priorities: Vec<f64>,
    updates: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl Dyverse {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of priority-score refreshes performed.
    pub fn update_count(&self) -> usize {
        self.updates
    }

    /// The three-heuristic priority ensemble of the paper: system-aware
    /// (resource headroom), community-aware (LEI co-location pressure) and
    /// workload-aware (active task pressure).
    fn compute_priorities(&mut self, sim: &Simulator, snapshot: &SystemState) {
        let n = snapshot.n_hosts();
        self.priorities = (0..n)
            .map(|h| {
                let st = &sim.host_states()[h];
                let system_aware = 1.0 - st.load_score();
                let lei = sim.topology().lei(sim.topology().broker_of(h));
                let community_aware = 1.0
                    - lei
                        .iter()
                        .map(|&m| sim.host_states()[m].load_score())
                        .sum::<f64>()
                        / lei.len().max(1) as f64;
                let workload_aware = 1.0 - snapshot.metrics[h][7]; // task pressure
                (system_aware + community_aware + workload_aware) / 3.0
            })
            .collect();
        self.updates += 1;
    }
}

impl ResiliencePolicy for Dyverse {
    fn name(&self) -> &str {
        "DYVERSE"
    }

    fn repair(&mut self, sim: &Simulator, _snapshot: &SystemState) -> Option<Topology> {
        if !sim.failed_brokers().is_empty() {
            // A least-CPU scan over the LEI: cheap (DESIGN.md).
            self.modeled_decision_s += 0.05;
        }
        promote_orphan_repair(
            sim.topology(),
            sim.failed_brokers(),
            sim.host_states(),
            least_cpu,
        )
    }

    fn observe(
        &mut self,
        sim: &Simulator,
        snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        // DYVERSE's "fine-tuning" analogue: re-ranking priority scores
        // dynamically every interval (its share of Fig. 5f's overhead).
        self.compute_priorities(sim, snapshot);
        self.modeled_overhead_s += 1.4;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        0.05 // priority table only
    }
}

/// ECLB \[17\]: energy-efficient checkpointing and load balancing.
///
/// A Bayesian classifier sorts hosts into *overloaded / normal /
/// underloaded* classes from running load statistics; failed brokers are
/// replaced by an underloaded orphan, and one overloaded→underloaded
/// worker migration per interval rebalances LEIs. The paper notes ECLB
/// "only considers computational overloads" — its classifier reads CPU
/// only, which is why disk/DDoS-driven failures blindside it.
#[derive(Debug)]
pub struct Eclb {
    /// Running per-host CPU mean (the Bayesian prior's sufficient stats).
    cpu_mean: Vec<f64>,
    cpu_var: Vec<f64>,
    observations: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

/// ECLB's three host classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostClass {
    /// CPU well above its running mean.
    Overloaded,
    /// Within a standard deviation of normal.
    Normal,
    /// CPU well below its running mean.
    Underloaded,
}

impl Default for Eclb {
    fn default() -> Self {
        Self::new()
    }
}

impl Eclb {
    /// Creates the policy.
    pub fn new() -> Self {
        Self {
            cpu_mean: Vec::new(),
            cpu_var: Vec::new(),
            observations: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    /// Classifies host `h` given its current CPU utilisation.
    pub fn classify(&self, h: HostId, cpu: f64) -> HostClass {
        if h >= self.cpu_mean.len() || self.observations < 3 {
            return HostClass::Normal;
        }
        let mean = self.cpu_mean[h];
        let sd = self.cpu_var[h].sqrt().max(0.05);
        if cpu > mean + sd {
            HostClass::Overloaded
        } else if cpu < mean - sd {
            HostClass::Underloaded
        } else {
            HostClass::Normal
        }
    }

    fn update_stats(&mut self, sim: &Simulator) {
        let states = sim.host_states();
        if self.cpu_mean.len() != states.len() {
            self.cpu_mean = vec![0.3; states.len()];
            self.cpu_var = vec![0.02; states.len()];
        }
        // Exponentially-weighted Bayesian update of the class statistics.
        const LAMBDA: f64 = 0.2;
        for (h, st) in states.iter().enumerate() {
            let delta = st.cpu - self.cpu_mean[h];
            self.cpu_mean[h] += LAMBDA * delta;
            self.cpu_var[h] = (1.0 - LAMBDA) * (self.cpu_var[h] + LAMBDA * delta * delta);
        }
        self.observations += 1;
    }
}

impl ResiliencePolicy for Eclb {
    fn name(&self) -> &str {
        "ECLB"
    }

    fn repair(&mut self, sim: &Simulator, _snapshot: &SystemState) -> Option<Topology> {
        if !sim.failed_brokers().is_empty() {
            // Bayesian classification pass + migration planning.
            self.modeled_decision_s += 0.1;
        }
        let states = sim.host_states();
        // Prefer an Underloaded orphan; break ties by lowest CPU.
        let pick = |orphans: &[HostId], st: &[edgesim::HostState]| -> Option<HostId> {
            let underloaded: Vec<HostId> = orphans
                .iter()
                .copied()
                .filter(|&h| self.classify(h, st[h].cpu) == HostClass::Underloaded)
                .collect();
            let pool = if underloaded.is_empty() {
                orphans
            } else {
                &underloaded[..]
            };
            least_cpu(pool, st)
        };
        let mut repaired =
            promote_orphan_repair(sim.topology(), sim.failed_brokers(), states, pick);

        // One rebalancing migration per interval: shift a worker from the
        // most overloaded LEI to the most underloaded broker.
        let base = repaired.clone().unwrap_or_else(|| sim.topology().clone());
        let brokers = base.brokers();
        if brokers.len() >= 2 {
            let load_of = |b: HostId| {
                let lei = base.lei(b);
                lei.iter().map(|&m| states[m].cpu).sum::<f64>() / lei.len() as f64
            };
            let hot = brokers
                .iter()
                .copied()
                .max_by(|&a, &b| load_of(a).partial_cmp(&load_of(b)).expect("finite"));
            let cold = brokers
                .iter()
                .copied()
                .min_by(|&a, &b| load_of(a).partial_cmp(&load_of(b)).expect("finite"));
            if let (Some(hot), Some(cold)) = (hot, cold) {
                if hot != cold && load_of(hot) - load_of(cold) > 0.2 {
                    let mut t = base.clone();
                    if let Some(w) = least_cpu(&t.workers_of(hot), states) {
                        if t.reassign(w, cold).is_ok() {
                            repaired = Some(t);
                        }
                    }
                }
            }
        }
        repaired
    }

    fn observe(
        &mut self,
        sim: &Simulator,
        _snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        self.update_stats(sim);
        self.modeled_overhead_s += 1.5;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        0.1 // per-host Gaussian statistics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::scheduler::LeastLoadScheduler;
    use edgesim::state::Normalizer;
    use edgesim::{FaultLoad, SimConfig};

    fn capture(sim: &Simulator) -> SystemState {
        SystemState::capture(
            sim.topology(),
            sim.specs(),
            sim.host_states(),
            sim.tasks(),
            &edgesim::SchedulingDecision::new(),
            &Normalizer::default(),
        )
    }

    #[test]
    fn dyverse_repairs_with_least_cpu_orphan() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 1));
        let mut sched = LeastLoadScheduler::new();
        sim.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);
        let mut policy = Dyverse::new();
        let topo = policy.repair(&sim, &snapshot).expect("repair expected");
        topo.validate().unwrap();
        assert!(matches!(topo.role(0), edgesim::NodeRole::Worker { .. }));
    }

    #[test]
    fn dyverse_updates_priorities_every_interval() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 2));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = Dyverse::new();
        for _ in 0..5 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            let out = policy.observe(&sim, &snapshot, &report);
            assert!(out.fine_tuned);
        }
        assert_eq!(policy.update_count(), 5);
        assert_eq!(policy.priorities.len(), 8);
        assert!(policy.priorities.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn eclb_classifier_tracks_load_regimes() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 3));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = Eclb::new();
        for _ in 0..10 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            policy.observe(&sim, &snapshot, &report);
        }
        // Idle cluster: a sudden 0.9 CPU reading classifies overloaded.
        assert_eq!(policy.classify(2, 0.95), HostClass::Overloaded);
        // Brokers carry management load (~0.12); a zero reading on a
        // worker stays within the normal band.
        assert_eq!(policy.classify(0, policy.cpu_mean[0]), HostClass::Normal);
    }

    #[test]
    fn eclb_repairs_broker_failure() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 4));
        let mut sched = LeastLoadScheduler::new();
        let mut policy = Eclb::new();
        for _ in 0..4 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            policy.observe(&sim, &snapshot, &report);
        }
        sim.inject_fault(
            1,
            FaultLoad {
                ram: 1.0,
                ..Default::default()
            },
        );
        sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);
        let topo = policy.repair(&sim, &snapshot).expect("repair expected");
        topo.validate().unwrap();
        assert!(matches!(topo.role(1), edgesim::NodeRole::Worker { .. }));
    }

    #[test]
    fn memory_footprints_are_tiny() {
        assert!(Dyverse::new().memory_gb() < 0.2);
        assert!(Eclb::new().memory_gb() < 0.2);
    }
}
