//! Baseline resilience policies the paper compares against (§II, §V).
//!
//! Two heuristic/meta-heuristic methods and five AI-based methods, each
//! re-implemented at the level of detail the paper (and its citations)
//! describe their *broker-failure handling and model-maintenance
//! behaviour* — the properties the §V experiments measure:
//!
//! | Policy | Class | Broker-failure rule | Model maintenance |
//! |---|---|---|---|
//! | [`Dyverse`] | heuristic | least-CPU orphan becomes broker | priority scores re-ranked every interval |
//! | [`Eclb`] | meta-heuristic | Bayesian host classes pick an underloaded orphan | class statistics updated every interval |
//! | [`Lbos`] | RL | Q-table over load states; GA-tuned reward weights | Q-updates every interval |
//! | [`Elbs`] | surrogate | fuzzy priorities + neural surrogate matchmaking | surrogate fine-tuned every interval |
//! | [`Fras`] | surrogate | recurrent surrogate picks the repair candidate | surrogate fine-tuned every interval |
//! | [`TopoMad`] | reconstruction | detector + FRAS's load-balancing policy | autoencoder retrained every interval |
//! | [`StepGan`] | reconstruction | GAN detector + FRAS's policy | GAN stepped every interval |
//!
//! TopoMAD and StepGAN are detection-only methods; per §V the paper pairs
//! them with the priority-based load-balancing policy of the next-best
//! baseline (FRAS), which is what [`TopoMad`] and [`StepGan`] do here.

#![warn(missing_docs)]

pub mod heuristic;
pub mod reconstruction;
pub mod rl;
pub mod surrogate;
pub mod table1;

pub use heuristic::{Dyverse, Eclb};
pub use reconstruction::{StepGan, TopoMad};
pub use rl::Lbos;
pub use surrogate::{Elbs, Fras};

use carol::policy::ResiliencePolicy;
use edgesim::{HostId, HostState, NodeRole, Topology};

/// Builds all seven baselines with one seed, in the paper's Fig. 5 order.
pub fn all_baselines(seed: u64) -> Vec<Box<dyn ResiliencePolicy>> {
    vec![
        Box::new(Dyverse::new()),
        Box::new(Eclb::new()),
        Box::new(Lbos::new(seed)),
        Box::new(Elbs::new(seed)),
        Box::new(Fras::new(seed)),
        Box::new(TopoMad::new(seed)),
        Box::new(StepGan::new(seed)),
    ]
}

/// Shared repair primitive: resolve each failed broker by promoting the
/// orphan chosen by `pick` (falling back to merging the LEI into the
/// least-loaded surviving broker when no orphan is eligible). Returns the
/// repaired topology, or `None` when nothing needed repair.
///
/// This is the "worker with the least X becomes the broker" rule that the
/// heuristic baselines share, with the selection criterion injected.
pub(crate) fn promote_orphan_repair(
    topology: &Topology,
    failed: &[HostId],
    states: &[HostState],
    mut pick: impl FnMut(&[HostId], &[HostState]) -> Option<HostId>,
) -> Option<Topology> {
    if failed.is_empty() {
        return None;
    }
    let banned: Vec<HostId> = states
        .iter()
        .enumerate()
        .filter_map(|(h, st)| st.failed.then_some(h))
        .collect();
    let mut topo = topology.clone();
    for &b in failed {
        if !matches!(topo.role(b), NodeRole::Broker) {
            continue;
        }
        let orphans: Vec<HostId> = topo
            .workers_of(b)
            .into_iter()
            .filter(|w| !banned.contains(w))
            .collect();
        if let Some(leader) = pick(&orphans, states) {
            // Type-3 node-shift: the chosen orphan replaces the broker.
            topo.promote(leader).expect("orphan promotion is valid");
            for w in topo.workers_of(b) {
                topo.reassign(w, leader).expect("sibling reassignment");
            }
            let _ = topo.demote(b, leader);
        } else {
            // No eligible orphan: merge the LEI into the least-loaded
            // surviving broker (type-2).
            let target = topo
                .brokers()
                .into_iter()
                .filter(|&x| x != b && !banned.contains(&x))
                .min_by(|&a, &c| {
                    states[a]
                        .load_score()
                        .partial_cmp(&states[c].load_score())
                        .expect("load scores are finite")
                });
            if let Some(target) = target {
                for w in topo.workers_of(b) {
                    topo.reassign(w, target).expect("orphan reassignment");
                }
                let _ = topo.demote(b, target);
            }
        }
    }
    Some(topo)
}

/// Least-CPU orphan selector (DYVERSE's published rule).
pub(crate) fn least_cpu(orphans: &[HostId], states: &[HostState]) -> Option<HostId> {
    orphans.iter().copied().min_by(|&a, &b| {
        states[a]
            .cpu
            .partial_cmp(&states[b].cpu)
            .expect("cpu utilisation is finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::HostState;

    fn states_with_cpu(cpus: &[f64]) -> Vec<HostState> {
        cpus.iter()
            .map(|&c| HostState {
                cpu: c,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn promote_orphan_repair_picks_least_cpu() {
        let topo = Topology::balanced(8, 2).unwrap();
        // Broker 0's workers are {2, 4, 6}; make host 4 the coolest.
        let mut cpus = vec![0.5; 8];
        cpus[2] = 0.8;
        cpus[4] = 0.1;
        cpus[6] = 0.6;
        let states = states_with_cpu(&cpus);
        let repaired = promote_orphan_repair(&topo, &[0], &states, least_cpu).unwrap();
        repaired.validate().unwrap();
        assert!(matches!(repaired.role(4), NodeRole::Broker));
        assert!(matches!(repaired.role(0), NodeRole::Worker { .. }));
    }

    #[test]
    fn no_failures_means_no_repair() {
        let topo = Topology::balanced(8, 2).unwrap();
        let states = states_with_cpu(&[0.1; 8]);
        assert!(promote_orphan_repair(&topo, &[], &states, least_cpu).is_none());
    }

    #[test]
    fn repair_merges_when_no_orphan_is_eligible() {
        let topo = Topology::balanced(8, 2).unwrap();
        let mut states = states_with_cpu(&[0.2; 8]);
        // Everything in broker 0's LEI failed except the broker's peers.
        for w in topo.workers_of(0) {
            states[w].failed = true;
        }
        states[0].failed = true;
        let repaired = promote_orphan_repair(&topo, &[0], &states, least_cpu).unwrap();
        repaired.validate().unwrap();
        assert!(matches!(repaired.role(0), NodeRole::Worker { .. }));
        assert_eq!(repaired.brokers(), vec![1]);
    }

    #[test]
    fn all_baselines_have_unique_names() {
        let baselines = all_baselines(0);
        assert_eq!(baselines.len(), 7);
        let names: std::collections::BTreeSet<String> =
            baselines.iter().map(|b| b.name().to_string()).collect();
        assert_eq!(names.len(), 7);
    }
}
