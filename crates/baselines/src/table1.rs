//! Table I of the paper: the related-work feature matrix.
//!
//! Each row records which properties a method has (✓ in the paper). The
//! `table1` experiment binary prints this matrix; the data also serves as
//! machine-checkable documentation of what each implementation is supposed
//! to cover.

use serde::{Deserialize, Serialize};

/// Approach class, as named in the paper's "Approach" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// Rule-based heuristics.
    Heuristic,
    /// Search/meta-heuristic methods.
    MetaHeuristic,
    /// Reinforcement learning.
    ReinforcementLearning,
    /// Neural surrogate models.
    SurrogateModel,
    /// Reconstruction-based anomaly detection.
    Reconstruction,
}

impl Approach {
    /// The label used in the printed table.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Heuristic => "Heuristic",
            Approach::MetaHeuristic => "Meta-Heuristic",
            Approach::ReinforcementLearning => "RL",
            Approach::SurrogateModel => "Surrogate Model",
            Approach::Reconstruction => "Reconstruction",
        }
    }
}

/// One row of Table I.
///
/// Serialize-only: rows are static data with `&'static str` names, which
/// no deserializer can produce from owned input.
#[derive(Debug, Clone, Serialize)]
pub struct Capability {
    /// Method name.
    pub name: &'static str,
    /// Considers IoT workloads.
    pub iot: bool,
    /// Approach class.
    pub approach: Approach,
    /// Considers broker resilience.
    pub broker_resilience: bool,
    /// Predicts QoS.
    pub qos_prediction: bool,
    /// Reports energy.
    pub energy: bool,
    /// Reports response time.
    pub response_time: bool,
    /// Reports SLO violations.
    pub slo_violations: bool,
    /// Reports overheads.
    pub overheads: bool,
    /// Reports memory consumption.
    pub memory: bool,
}

/// The full Table I, in the paper's row order.
pub fn table() -> Vec<Capability> {
    vec![
        Capability {
            name: "DYVERSE",
            iot: true,
            approach: Approach::Heuristic,
            broker_resilience: true,
            qos_prediction: false,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "DISP",
            iot: false,
            approach: Approach::Heuristic,
            broker_resilience: false,
            qos_prediction: false,
            energy: false,
            response_time: true,
            slo_violations: false,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "LBM",
            iot: true,
            approach: Approach::Heuristic,
            broker_resilience: true,
            qos_prediction: false,
            energy: true,
            response_time: true,
            slo_violations: false,
            overheads: false,
            memory: false,
        },
        Capability {
            name: "FDMR",
            iot: false,
            approach: Approach::MetaHeuristic,
            broker_resilience: false,
            qos_prediction: false,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: false,
            memory: false,
        },
        Capability {
            name: "ECLB",
            iot: true,
            approach: Approach::MetaHeuristic,
            broker_resilience: true,
            qos_prediction: false,
            energy: true,
            response_time: true,
            slo_violations: false,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "LBOS",
            iot: true,
            approach: Approach::ReinforcementLearning,
            broker_resilience: true,
            qos_prediction: true,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "ELBS",
            iot: true,
            approach: Approach::SurrogateModel,
            broker_resilience: true,
            qos_prediction: true,
            energy: true,
            response_time: true,
            slo_violations: false,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "FRAS",
            iot: false,
            approach: Approach::SurrogateModel,
            broker_resilience: true,
            qos_prediction: true,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: false,
            memory: false,
        },
        Capability {
            name: "TopoMAD",
            iot: false,
            approach: Approach::Reconstruction,
            broker_resilience: false,
            qos_prediction: true,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "StepGAN",
            iot: true,
            approach: Approach::Reconstruction,
            broker_resilience: false,
            qos_prediction: true,
            energy: false,
            response_time: true,
            slo_violations: true,
            overheads: true,
            memory: false,
        },
        Capability {
            name: "CAROL",
            iot: true,
            approach: Approach::SurrogateModel,
            broker_resilience: true,
            qos_prediction: true,
            energy: true,
            response_time: true,
            slo_violations: true,
            overheads: true,
            memory: true,
        },
    ]
}

/// Renders the matrix as the markdown table the `table1` binary prints.
pub fn render() -> String {
    let rows = table();
    let mut out = String::new();
    out.push_str(
        "| Work | IoT | Approach | Broker Resilience | QoS Prediction | Energy | Response Time | SLO Violations | Overheads | Memory |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    let tick = |b: bool| if b { "✓" } else { " " };
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.name,
            tick(r.iot),
            r.approach.label(),
            tick(r.broker_resilience),
            tick(r.qos_prediction),
            tick(r.energy),
            tick(r.response_time),
            tick(r.slo_violations),
            tick(r.overheads),
            tick(r.memory),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_rows_ending_with_carol() {
        let t = table();
        assert_eq!(t.len(), 11);
        assert_eq!(t.last().unwrap().name, "CAROL");
    }

    #[test]
    fn carol_is_the_only_full_row() {
        for r in table() {
            let full = r.iot
                && r.broker_resilience
                && r.qos_prediction
                && r.energy
                && r.response_time
                && r.slo_violations
                && r.overheads
                && r.memory;
            assert_eq!(full, r.name == "CAROL", "row {}", r.name);
        }
    }

    #[test]
    fn render_produces_markdown() {
        let s = render();
        assert!(s.contains("| CAROL |"));
        assert!(s.lines().count() == 13); // header + separator + 11 rows
    }

    #[test]
    fn implemented_baselines_all_appear() {
        let names: Vec<&str> = table().iter().map(|r| r.name).collect();
        for b in [
            "DYVERSE", "ECLB", "LBOS", "ELBS", "FRAS", "TopoMAD", "StepGAN",
        ] {
            assert!(names.contains(&b), "{b} missing from Table I");
        }
    }
}
