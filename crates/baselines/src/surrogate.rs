//! Surrogate-model baselines: ELBS \[19\] and FRAS \[20\].
//!
//! Both predict QoS with a neural surrogate and — lacking any confidence
//! signal — fine-tune it **every interval**, the overhead pathology CAROL
//! is built to avoid (§II: "their parameters need to be periodically
//! fine-tuned to adapt to dynamic environments, giving rise to high
//! overheads").

use carol::nodeshift::neighborhood;
use carol::policy::{ObserveOutcome, ResiliencePolicy};
use edgesim::state::{SystemState, GRAPH_DIM, METRIC_DIM, SCHED_DIM};
use edgesim::{HostId, IntervalReport, NodeRole, Simulator, Topology};
use nn::init::Initializer;
use nn::layer::{Activation, Dense, Layer, Sequential};
use nn::{Adam, Matrix};

const POOLED_DIM: usize = METRIC_DIM + SCHED_DIM + GRAPH_DIM;

fn pooled(state: &SystemState) -> Vec<f64> {
    let n = state.n_hosts().max(1) as f64;
    let mut row = vec![0.0; POOLED_DIM];
    for h in 0..state.n_hosts() {
        for (i, v) in state.metrics[h].iter().enumerate() {
            row[i] += v / n;
        }
        for (i, v) in state.schedule[h].iter().enumerate() {
            row[METRIC_DIM + i] += v / n;
        }
        for (i, v) in state.graph_features[h].iter().enumerate() {
            row[METRIC_DIM + SCHED_DIM + i] += v / n;
        }
    }
    row
}

/// Triangular membership degrees (low / medium / high) of a value in
/// `[0, 1]` — the fuzzification front-end both fuzzy baselines share.
pub fn fuzzify(x: f64) -> [f64; 3] {
    let x = x.clamp(0.0, 1.0);
    let low = (1.0 - 2.0 * x).max(0.0);
    let medium = (1.0 - (2.0 * x - 1.0).abs()).max(0.0);
    let high = (2.0 * x - 1.0).max(0.0);
    [low, medium, high]
}

/// Picks the candidate repair with the lowest surrogate score, resolving
/// every failed broker via the full node-shift neighbourhood (like CAROL,
/// but greedy single-pass — no tabu escape from local optima).
fn best_neighbor_repair(
    sim: &Simulator,
    snapshot: &SystemState,
    queries: &mut usize,
    mut score: impl FnMut(&SystemState) -> f64,
) -> Option<Topology> {
    let failed = sim.failed_brokers();
    if failed.is_empty() {
        return None;
    }
    let banned: Vec<HostId> = sim
        .host_states()
        .iter()
        .enumerate()
        .filter_map(|(h, st)| st.failed.then_some(h))
        .collect();
    let mut topo = sim.topology().clone();
    for &b in failed {
        if !matches!(topo.role(b), NodeRole::Broker) {
            continue;
        }
        let candidates = neighborhood(&topo, b, &banned);
        if candidates.is_empty() {
            continue;
        }
        *queries += candidates.len();
        topo = candidates
            .into_iter()
            .min_by(|a, c| {
                let sa = score(&snapshot.with_topology(a));
                let sc = score(&snapshot.with_topology(c));
                sa.partial_cmp(&sc).expect("surrogate scores are finite")
            })
            .expect("candidate list is non-empty");
    }
    Some(topo)
}

/// ELBS \[19\]: effective load balancing with fuzzy + probabilistic neural
/// networks.
///
/// A fuzzy inference system converts (SLO pressure, priority, estimated
/// processing time) into task priorities; a *large* neural surrogate then
/// scores allocations during an exhaustive match-making pass. The paper
/// measures ELBS as the most memory-hungry method with the highest
/// decision latency — both properties come from the published design:
/// fuzzy+probabilistic networks are resource-intensive, and matchmaking
/// iterates priorities × hosts.
pub struct Elbs {
    surrogate: Sequential,
    adam: Adam,
    fine_tunes: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl std::fmt::Debug for Elbs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Elbs(params={})", self.surrogate.param_count())
    }
}

impl Elbs {
    /// Builds ELBS's (deliberately large) fuzzy-input surrogate.
    pub fn new(seed: u64) -> Self {
        let mut init = Initializer::new(seed);
        let mut surrogate = Sequential::new();
        // Fuzzified pooled features: 3 memberships per pooled dimension.
        surrogate.push(Dense::new(POOLED_DIM * 3, 256, &mut init));
        surrogate.push(Activation::relu());
        surrogate.push(Dense::new(256, 256, &mut init));
        surrogate.push(Activation::tanh());
        surrogate.push(Dense::new(256, 1, &mut init));
        Self {
            surrogate,
            adam: Adam::new(1e-3, 1e-5),
            fine_tunes: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    /// Fuzzified input row for the surrogate.
    fn fuzzy_input(state: &SystemState) -> Matrix {
        let p = pooled(state);
        let mut row = Vec::with_capacity(POOLED_DIM * 3);
        for v in p {
            row.extend_from_slice(&fuzzify(v));
        }
        Matrix::row_vector(&row)
    }

    /// Surrogate QoS score (lower = better) with the match-making pass:
    /// the fuzzy priority of every metric row is matched against every
    /// host's headroom, which is the O(p·|H|) loop the paper blames for
    /// ELBS's decision time.
    pub fn score(&mut self, state: &SystemState) -> f64 {
        Self::score_with(&mut self.surrogate, state)
    }

    fn score_with(surrogate: &mut Sequential, state: &SystemState) -> f64 {
        let neural = surrogate.forward(&Self::fuzzy_input(state))[(0, 0)];
        let mut matchmaking = 0.0;
        for h in 0..state.n_hosts() {
            let headroom = 1.0 - state.metrics[h][0];
            for other in 0..state.n_hosts() {
                let [low, med, high] = fuzzify(state.metrics[other][8]);
                matchmaking += (0.2 * low + 0.5 * med + 0.9 * high) * (1.0 - headroom);
            }
        }
        neural + 0.01 * matchmaking / state.n_hosts().max(1) as f64
    }

    /// Fine-tune counter (every interval by construction).
    pub fn fine_tune_count(&self) -> usize {
        self.fine_tunes
    }
}

impl ResiliencePolicy for Elbs {
    fn name(&self) -> &str {
        "ELBS"
    }

    fn repair(&mut self, sim: &Simulator, snapshot: &SystemState) -> Option<Topology> {
        let mut queries = 0usize;
        let surrogate = &mut self.surrogate;
        let repaired = best_neighbor_repair(sim, snapshot, &mut queries, |s| {
            Self::score_with(surrogate, s)
        });
        // Fuzzy inference + matchmaking per candidate (§II: "time-
        // consuming … match-making algorithms"): 0.15 s testbed-equivalent.
        self.modeled_decision_s += 0.15 * queries as f64;
        repaired
    }

    fn observe(
        &mut self,
        _sim: &Simulator,
        snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        self.modeled_overhead_s += 2.0;
        // Supervised pull toward the observed objective, every interval.
        let (qe, qs) = snapshot.qos_components();
        let target = 0.5 * qe + 0.5 * qs;
        let x = Self::fuzzy_input(snapshot);
        let y = self.surrogate.forward(&x);
        let err = y[(0, 0)] - target;
        self.surrogate.zero_grad();
        self.surrogate
            .backward(&Matrix::from_vec(1, 1, vec![2.0 * err]));
        self.adam.step(self.surrogate.params_mut());
        self.fine_tunes += 1;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        5.0 // fuzzy + probabilistic networks: the heaviest method measured
    }
}

/// FRAS \[20\]: fuzzy-based real-time auto-scaling.
///
/// A fuzzy *recurrent* neural network predicts QoS for autoscaling
/// decisions; the hidden state carries temporal context across intervals.
/// FRAS is the strongest baseline on response time / SLO in the paper and
/// the cheapest AI baseline to keep fine-tuned (121 s per 100 intervals),
/// but it still pays that cost **every** interval.
pub struct Fras {
    wx: Dense,
    wh: Dense,
    head: Dense,
    hidden: Matrix,
    hidden_dim: usize,
    adam: Adam,
    fine_tunes: usize,
    modeled_decision_s: f64,
    modeled_overhead_s: f64,
}

impl std::fmt::Debug for Fras {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fras(hidden={})", self.hidden_dim)
    }
}

impl Fras {
    /// Builds the fuzzy recurrent surrogate.
    pub fn new(seed: u64) -> Self {
        let hidden_dim = 64;
        let mut init = Initializer::new(seed);
        Self {
            wx: Dense::new(POOLED_DIM * 3, hidden_dim, &mut init),
            wh: Dense::new(hidden_dim, hidden_dim, &mut init),
            head: Dense::new(hidden_dim, 1, &mut init),
            hidden: Matrix::zeros(1, hidden_dim),
            hidden_dim,
            adam: Adam::new(1e-3, 1e-5),
            fine_tunes: 0,
            modeled_decision_s: 0.0,
            modeled_overhead_s: 0.0,
        }
    }

    fn fuzzy_input(state: &SystemState) -> Matrix {
        let p = pooled(state);
        let mut row = Vec::with_capacity(POOLED_DIM * 3);
        for v in p {
            row.extend_from_slice(&fuzzify(v));
        }
        Matrix::row_vector(&row)
    }

    /// One recurrent step *without* committing the hidden state — used
    /// when scoring hypothetical repair candidates.
    fn peek(&mut self, state: &SystemState) -> f64 {
        let x = Self::fuzzy_input(state);
        let zx = self.wx.forward(&x);
        let zh = self.wh.forward(&self.hidden.clone());
        let h = (&zx + &zh).map(f64::tanh);
        self.head.forward(&h)[(0, 0)]
    }

    /// Recurrent step that *does* advance the hidden state (end of each
    /// real interval).
    fn advance(&mut self, state: &SystemState) -> f64 {
        let x = Self::fuzzy_input(state);
        let zx = self.wx.forward(&x);
        let zh = self.wh.forward(&self.hidden.clone());
        self.hidden = (&zx + &zh).map(f64::tanh);
        self.head.forward(&self.hidden.clone())[(0, 0)]
    }

    /// Fine-tune counter.
    pub fn fine_tune_count(&self) -> usize {
        self.fine_tunes
    }
}

impl ResiliencePolicy for Fras {
    fn name(&self) -> &str {
        "FRAS"
    }

    fn repair(&mut self, sim: &Simulator, snapshot: &SystemState) -> Option<Topology> {
        let mut queries = 0usize;
        let repaired = best_neighbor_repair(sim, snapshot, &mut queries, |s| self.peek(s));
        // Recurrent-surrogate inference per candidate: 0.04 s on the Pi.
        self.modeled_decision_s += 0.04 * queries as f64;
        repaired
    }

    fn observe(
        &mut self,
        _sim: &Simulator,
        snapshot: &SystemState,
        _report: &IntervalReport,
    ) -> ObserveOutcome {
        self.modeled_overhead_s += 1.2;
        let (qe, qs) = snapshot.qos_components();
        let target = 0.5 * qe + 0.5 * qs;
        // Truncated-BPTT(1) update: advance, then pull the head toward the
        // observed objective through the last step only.
        let y = self.advance(snapshot);
        let err = y - target;
        self.head.zero_grad_all();
        let g_h = self.head.backward(&Matrix::from_vec(1, 1, vec![2.0 * err]));
        // Through tanh into the two input maps.
        let mut g_pre = g_h;
        for i in 0..g_pre.len() {
            let h = self.hidden.data()[i];
            g_pre.data_mut()[i] *= 1.0 - h * h;
        }
        self.wx.zero_grad_all();
        self.wh.zero_grad_all();
        self.wx.backward(&g_pre);
        self.wh.backward(&g_pre);
        let mut params = self.wx.params_mut();
        params.extend(self.wh.params_mut());
        params.extend(self.head.params_mut());
        self.adam.step(params);
        self.fine_tunes += 1;
        ObserveOutcome { fine_tuned: true }
    }

    fn modeled_decision_s(&self) -> f64 {
        self.modeled_decision_s
    }

    fn modeled_overhead_s(&self) -> f64 {
        self.modeled_overhead_s
    }

    fn memory_gb(&self) -> f64 {
        1.5 // recurrent network + fuzzifier
    }
}

/// Extension: zeroing helper used by FRAS's manual recurrent backward.
trait ZeroGradAll {
    fn zero_grad_all(&mut self);
}

impl ZeroGradAll for Dense {
    fn zero_grad_all(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::scheduler::LeastLoadScheduler;
    use edgesim::state::Normalizer;
    use edgesim::{FaultLoad, SimConfig};

    fn capture(sim: &Simulator) -> SystemState {
        SystemState::capture(
            sim.topology(),
            sim.specs(),
            sim.host_states(),
            sim.tasks(),
            &edgesim::SchedulingDecision::new(),
            &Normalizer::default(),
        )
    }

    #[test]
    fn fuzzify_partitions_unity_at_extremes() {
        assert_eq!(fuzzify(0.0), [1.0, 0.0, 0.0]);
        assert_eq!(fuzzify(0.5), [0.0, 1.0, 0.0]);
        assert_eq!(fuzzify(1.0), [0.0, 0.0, 1.0]);
        for x in [0.1, 0.25, 0.4, 0.6, 0.9] {
            let m = fuzzify(x);
            assert!(m.iter().all(|&d| (0.0..=1.0).contains(&d)));
            assert!(m.iter().sum::<f64>() > 0.0);
        }
    }

    #[test]
    fn elbs_and_fras_repair_failures() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 1));
        let mut sched = LeastLoadScheduler::new();
        sim.inject_fault(
            0,
            FaultLoad {
                cpu: 1.0,
                ..Default::default()
            },
        );
        sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);

        let mut elbs = Elbs::new(1);
        let t1 = elbs.repair(&sim, &snapshot).expect("ELBS repairs");
        t1.validate().unwrap();
        assert!(matches!(t1.role(0), NodeRole::Worker { .. }));

        let mut fras = Fras::new(1);
        let t2 = fras.repair(&sim, &snapshot).expect("FRAS repairs");
        t2.validate().unwrap();
        assert!(matches!(t2.role(0), NodeRole::Worker { .. }));
    }

    #[test]
    fn both_fine_tune_every_interval() {
        let mut sim = Simulator::new(SimConfig::small(8, 2, 2));
        let mut sched = LeastLoadScheduler::new();
        let mut elbs = Elbs::new(2);
        let mut fras = Fras::new(2);
        for _ in 0..6 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            assert!(elbs.observe(&sim, &snapshot, &report).fine_tuned);
            assert!(fras.observe(&sim, &snapshot, &report).fine_tuned);
        }
        assert_eq!(elbs.fine_tune_count(), 6);
        assert_eq!(fras.fine_tune_count(), 6);
    }

    #[test]
    fn fras_hidden_state_carries_memory() {
        let mut sim = Simulator::new(SimConfig::small(6, 2, 3));
        let mut sched = LeastLoadScheduler::new();
        let mut fras = Fras::new(3);
        let r = sim.step(Vec::new(), &mut sched);
        let snapshot = capture(&sim);
        let before = fras.hidden.clone();
        fras.observe(&sim, &snapshot, &r);
        assert_ne!(before, fras.hidden, "hidden state must advance");
    }

    #[test]
    fn fras_learning_reduces_prediction_error() {
        let mut sim = Simulator::new(SimConfig::small(6, 2, 4));
        let mut sched = LeastLoadScheduler::new();
        let mut fras = Fras::new(4);
        let mut errors = Vec::new();
        for _ in 0..60 {
            let report = sim.step(Vec::new(), &mut sched);
            let snapshot = capture(&sim);
            let (qe, qs) = snapshot.qos_components();
            let target = 0.5 * qe + 0.5 * qs;
            let pred = fras.peek(&snapshot);
            errors.push((pred - target).abs());
            fras.observe(&sim, &snapshot, &report);
        }
        // The target itself drifts interval to interval; the recurrent
        // surrogate must track it without diverging: the tail of the error
        // series stays bounded and finite.
        let tail = &errors[errors.len() - 10..];
        assert!(tail.iter().all(|e| e.is_finite()));
        let tail_mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(tail_mean < 0.5, "tracking error diverged: {tail_mean}");
    }

    #[test]
    fn elbs_is_the_memory_heavyweight() {
        assert!(Elbs::new(0).memory_gb() > Fras::new(0).memory_gb());
        assert!(Elbs::new(0).memory_gb() >= 5.0);
    }
}
